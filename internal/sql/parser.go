package sql

import (
	"fmt"
	"strconv"
)

// Parse parses one SQL statement (an optional trailing semicolon is
// allowed).
func Parse(input string) (*Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s after end of statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: position %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// accept consumes the next token if it matches, reporting success.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.peek().kind == kind && p.peek().text == text {
		p.i++
		return true
	}
	return false
}

// expect consumes a required token.
func (p *parser) expect(kind tokenKind, text string) error {
	if !p.accept(kind, text) {
		return p.errf("expected %s, found %s", text, p.peek())
	}
	return nil
}

func (p *parser) acceptKeyword(kw string) bool { return p.accept(tokKeyword, kw) }

func (p *parser) parseStmt() (*Stmt, error) {
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt := &Stmt{Left: sel}
	for _, kw := range []string{"UNION", "INTERSECT", "EXCEPT"} {
		if p.acceptKeyword(kw) {
			all := p.acceptKeyword("ALL")
			right, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			stmt.SetOp = &SetOpClause{Kind: kw, All: all, Right: right}
			return stmt, nil
		}
	}
	return stmt, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	if p.acceptKeyword("PROVENANCE") {
		sel.Provenance = true
	}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	}
	if p.accept(tokSymbol, "*") {
		sel.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			col := SelectCol{E: e}
			if p.acceptKeyword("AS") {
				if p.peek().kind != tokIdent {
					return nil, p.errf("expected alias after AS, found %s", p.peek())
				}
				col.Alias = p.next().text
			} else if p.peek().kind == tokIdent {
				col.Alias = p.next().text
			}
			sel.Cols = append(sel.Cols, col)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	// FROM is optional: "SELECT 1" evaluates its select list over a single
	// empty tuple, as in PostgreSQL.
	if p.acceptKeyword("FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, ref)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{E: e}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, key)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	// LIMIT and OFFSET, in either order (PostgreSQL accepts both spellings),
	// each at most once.
	sawLimit, sawOffset := false, false
	for {
		switch {
		case !sawLimit && p.acceptKeyword("LIMIT"):
			sawLimit = true
			if p.peek().kind != tokNumber {
				return nil, p.errf("expected number after LIMIT, found %s", p.peek())
			}
			n, err := strconv.Atoi(p.next().text)
			if err != nil || n < 0 {
				return nil, p.errf("invalid LIMIT value")
			}
			sel.Limit = n
		case !sawOffset && p.acceptKeyword("OFFSET"):
			sawOffset = true
			if p.peek().kind != tokNumber {
				return nil, p.errf("expected number after OFFSET, found %s", p.peek())
			}
			n, err := strconv.Atoi(p.next().text)
			if err != nil || n < 0 {
				return nil, p.errf("invalid OFFSET value")
			}
			sel.Offset = n
		default:
			return sel, nil
		}
	}
}

// parseTableRef parses one FROM item including any chained joins.
func (p *parser) parseTableRef() (TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return TableRef{}, err
	}
	for {
		leftOuter := false
		switch {
		case p.acceptKeyword("JOIN"):
		case p.acceptKeyword("INNER"):
			if err := p.expect(tokKeyword, "JOIN"); err != nil {
				return TableRef{}, err
			}
		case p.acceptKeyword("LEFT"):
			p.acceptKeyword("OUTER")
			if err := p.expect(tokKeyword, "JOIN"); err != nil {
				return TableRef{}, err
			}
			leftOuter = true
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return TableRef{}, err
		}
		if err := p.expect(tokKeyword, "ON"); err != nil {
			return TableRef{}, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return TableRef{}, err
		}
		left = TableRef{Join: &JoinRef{Left: left, Right: right, LeftOuter: leftOuter, On: on}}
	}
}

func (p *parser) parseTablePrimary() (TableRef, error) {
	if p.accept(tokSymbol, "(") {
		sub, err := p.parseStmt()
		if err != nil {
			return TableRef{}, err
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return TableRef{}, err
		}
		p.acceptKeyword("AS")
		if p.peek().kind != tokIdent {
			return TableRef{}, p.errf("subquery in FROM requires an alias")
		}
		return TableRef{Sub: sub, Alias: p.next().text}, nil
	}
	if p.peek().kind != tokIdent {
		return TableRef{}, p.errf("expected table name, found %s", p.peek())
	}
	ref := TableRef{Table: p.next().text}
	if p.acceptKeyword("AS") {
		if p.peek().kind != tokIdent {
			return TableRef{}, p.errf("expected alias after AS, found %s", p.peek())
		}
		ref.Alias = p.next().text
	} else if p.peek().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// --- expressions ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "NOT", E: e}, nil
	}
	return p.parsePredicate()
}

// cmpOps are the comparison operator spellings.
var cmpOps = map[string]bool{"=": true, "<>": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parsePredicate() (Expr, error) {
	if p.acceptKeyword("EXISTS") {
		sub, err := p.parseParenStmt()
		if err != nil {
			return nil, err
		}
		return Exists{Sub: sub}, nil
	}
	l, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	// Comparison, possibly quantified.
	if p.peek().kind == tokSymbol && cmpOps[p.peek().text] {
		opPos := p.peek().pos
		op := p.next().text
		if p.acceptKeyword("ANY") || p.acceptKeyword("SOME") {
			sub, err := p.parseParenStmt()
			if err != nil {
				return nil, err
			}
			return Quant{Op: op, Any: true, E: l, Sub: sub}, nil
		}
		if p.acceptKeyword("ALL") {
			sub, err := p.parseParenStmt()
			if err != nil {
				return nil, err
			}
			return Quant{Op: op, Any: false, E: l, Sub: sub}, nil
		}
		r, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		return Binary{Op: op, L: l, R: r, Pos: opPos}, nil
	}
	not := false
	if p.acceptKeyword("NOT") {
		not = true
		// After "expr NOT" only IN, BETWEEN and LIKE may follow.
	}
	switch {
	case p.acceptKeyword("IS"):
		if not {
			return nil, p.errf("unexpected NOT before IS")
		}
		isNot := p.acceptKeyword("NOT")
		if err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return IsNull{E: l, Not: isNot}, nil
	case p.acceptKeyword("IN"):
		if err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
			sub, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return InSub{E: l, Sub: sub, Not: not}, nil
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return InList{E: l, List: list, Not: not}, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		return Between{E: l, Lo: lo, Hi: hi, Not: not}, nil
	}
	if likePos := p.peek().pos; p.acceptKeyword("LIKE") {
		pat, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		return Like{E: l, Pattern: pat, Not: not, Pos: likePos}, nil
	}
	if not {
		return nil, p.errf("expected IN, BETWEEN or LIKE after NOT")
	}
	return l, nil
}

// parseConcat parses the || level, which binds looser than additive
// arithmetic and tighter than comparisons (PostgreSQL's operator
// precedence).
func (p *parser) parseConcat() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokSymbol && p.peek().text == "||" {
		pos := p.next().pos
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "||", L: l, R: r, Pos: pos}
	}
	return l, nil
}

// parseCase parses the remainder of a CASE expression after the CASE
// keyword: both the searched form (CASE WHEN cond THEN r …) and the simple
// form (CASE operand WHEN v THEN r …), with an optional ELSE and a required
// END.
func (p *parser) parseCase() (Expr, error) {
	c := Case{}
	if !(p.peek().kind == tokKeyword && p.peek().text == "WHEN") {
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = operand
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		result, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Result: result})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("expected WHEN in CASE expression, found %s", p.peek())
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expect(tokKeyword, "END"); err != nil {
		return nil, err
	}
	return c, nil
}

// parseCast parses the remainder of CAST(expr AS type) after the CAST
// keyword. The type name is validated by the semantic analyzer (or the
// translator), not the parser.
func (p *parser) parseCast(pos int) (Expr, error) {
	if err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokKeyword, "AS"); err != nil {
		return nil, err
	}
	if p.peek().kind != tokIdent {
		return nil, p.errf("expected type name in CAST, found %s", p.peek())
	}
	typ := p.next().text
	if err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return CastExpr{E: e, Type: typ, Pos: pos}, nil
}

func (p *parser) parseParenStmt() (*Stmt, error) {
	if err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	sub, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return sub, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.peek().pos
		if p.accept(tokSymbol, "+") {
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: "+", L: l, R: r, Pos: pos}
		} else if p.accept(tokSymbol, "-") {
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: "-", L: l, R: r, Pos: pos}
		} else {
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		pos := p.peek().pos
		switch {
		case p.accept(tokSymbol, "*"):
			op = "*"
		case p.accept(tokSymbol, "/"):
			op = "/"
		case p.accept(tokSymbol, "%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r, Pos: pos}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return NumLit{Int: i, Pos: t.pos}, nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("invalid number %q", t.text)
		}
		return NumLit{Float: f, IsFlt: true, Pos: t.pos}, nil
	case tokString:
		p.next()
		return StrLit{S: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return NullLit{}, nil
		case "TRUE":
			p.next()
			return BoolLit{B: true}, nil
		case "FALSE":
			p.next()
			return BoolLit{B: false}, nil
		case "CASE":
			p.next()
			return p.parseCase()
		case "CAST":
			p.next()
			return p.parseCast(t.pos)
		}
		return nil, p.errf("unexpected keyword %s in expression", t.text)
	case tokIdent:
		p.next()
		// Function call?
		if p.accept(tokSymbol, "(") {
			call := Call{Name: t.text, Pos: t.pos}
			if p.accept(tokSymbol, "*") {
				call.Star = true
				if err := p.expect(tokSymbol, ")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if p.acceptKeyword("DISTINCT") {
				call.Distinct = true
			}
			if !p.accept(tokSymbol, ")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(tokSymbol, ",") {
						break
					}
				}
				if err := p.expect(tokSymbol, ")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		// Qualified reference?
		if p.accept(tokSymbol, ".") {
			if p.peek().kind != tokIdent {
				return nil, p.errf("expected column name after %s.", t.text)
			}
			return Ident{Qual: t.text, Name: p.next().text, Pos: t.pos}, nil
		}
		return Ident{Name: t.text, Pos: t.pos}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
				sub, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expect(tokSymbol, ")"); err != nil {
					return nil, err
				}
				return ScalarSub{Sub: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected %s in expression", t)
}

package sql

import (
	"strings"
	"testing"

	"perm/internal/types"
)

func TestParseCreateTable(t *testing.T) {
	st, err := ParseStatement("CREATE TABLE w (a int, b text, c double precision, d boolean)")
	if err != nil {
		t.Fatal(err)
	}
	def := st.CreateTable
	if def == nil || def.Name != "w" {
		t.Fatalf("CreateTable = %+v", def)
	}
	want := []ColDef{
		{"a", types.KindInt}, {"b", types.KindString},
		{"c", types.KindFloat}, {"d", types.KindBool},
	}
	if len(def.Cols) != len(want) {
		t.Fatalf("cols = %+v", def.Cols)
	}
	for i, c := range def.Cols {
		if c != want[i] {
			t.Errorf("col %d = %+v, want %+v", i, c, want[i])
		}
	}

	for _, bad := range []struct{ stmt, wantErr string }{
		{"CREATE TABLE w (a serial)", "does not exist"},
		{"CREATE TABLE w (a int, a text)", "more than once"},
		{"CREATE TABLE w (a int) garbage", "unexpected"},
		{"CREATE TABLE w ()", "expected column name"},
	} {
		_, err := ParseStatement(bad.stmt)
		if err == nil || !strings.Contains(err.Error(), bad.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", bad.stmt, err, bad.wantErr)
		}
	}
}

func TestParseInsert(t *testing.T) {
	st, err := ParseStatement("INSERT INTO w VALUES (1, 'x', 2.5, TRUE), (-3, NULL, -0.5, FALSE)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.Insert
	if ins == nil || ins.Table != "w" || len(ins.Rows) != 2 {
		t.Fatalf("Insert = %+v", ins)
	}
	kinds := func(row []types.Value) string {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.Kind().String())
		}
		return strings.Join(parts, ",")
	}
	if got := kinds(ins.Rows[0]); got != "integer,string,float,boolean" {
		t.Errorf("row 0 kinds = %s", got)
	}
	if got := kinds(ins.Rows[1]); got != "integer,null,float,boolean" {
		t.Errorf("row 1 kinds = %s", got)
	}

	for _, bad := range []struct{ stmt, wantErr string }{
		{"INSERT w VALUES (1)", "INTO"},
		{"INSERT INTO w (1)", "VALUES"},
		{"INSERT INTO w VALUES (9223372036854775808)", "out of range"},
		{"INSERT INTO w VALUES (-NULL)", "cannot negate"},
		{"INSERT INTO w VALUES (a)", "expected a literal"},
	} {
		_, err := ParseStatement(bad.stmt)
		if err == nil || !strings.Contains(err.Error(), bad.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", bad.stmt, err, bad.wantErr)
		}
	}
}

func TestParseDropTable(t *testing.T) {
	st, err := ParseStatement("DROP TABLE w")
	if err != nil {
		t.Fatal(err)
	}
	if st.DropTable != "w" {
		t.Fatalf("DropTable = %q", st.DropTable)
	}
}

func TestCheckInsertKinds(t *testing.T) {
	cols := []string{"a", "b"}
	kinds := []types.Kind{types.KindInt, types.KindString}
	ok := &InsertStmt{Table: "w", Rows: [][]types.Value{
		{types.NewInt(1), types.NewString("x")},
		{types.Null(), types.Null()},
	}}
	if err := CheckInsertKinds(ok, cols, kinds); err != nil {
		t.Fatalf("valid insert rejected: %v", err)
	}

	narrow := &InsertStmt{Table: "w", Rows: [][]types.Value{{types.NewInt(1)}}}
	if err := CheckInsertKinds(narrow, cols, kinds); err == nil || !strings.Contains(err.Error(), "columns") {
		t.Errorf("width mismatch: err = %v", err)
	}

	wrong := &InsertStmt{Table: "w", Rows: [][]types.Value{{types.NewString("x"), types.NewString("y")}}}
	if err := CheckInsertKinds(wrong, cols, kinds); err == nil || !strings.Contains(err.Error(), "string value for integer column") {
		t.Errorf("kind mismatch: err = %v", err)
	}

	// A KindNull column (kind unknown) admits anything.
	if err := CheckInsertKinds(wrong, cols, []types.Kind{types.KindNull, types.KindString}); err != nil {
		t.Errorf("null-kind column rejected a value: %v", err)
	}
}

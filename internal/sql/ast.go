package sql

// The SQL abstract syntax tree. It is deliberately separate from the
// algebra: the parser produces this untyped surface form, and translate.go
// lowers it — resolving *, IN lists, aggregate extraction and subquery
// kinds — onto internal/algebra.

// Stmt is a full statement: a select possibly combined with set operations.
type Stmt struct {
	Left  *SelectStmt
	SetOp *SetOpClause // nil when the statement is a plain select
}

// SetOpClause chains a set operation onto the left select.
type SetOpClause struct {
	Kind  string // "UNION", "INTERSECT", "EXCEPT"
	All   bool   // UNION ALL keeps duplicates
	Right *Stmt
}

// SelectStmt is one SELECT … query block.
type SelectStmt struct {
	Distinct   bool
	Provenance bool // SELECT PROVENANCE …, the Perm language extension
	Cols       []SelectCol
	Star       bool
	From       []TableRef
	Where      Expr
	GroupBy    []Expr
	Having     Expr
	OrderBy    []OrderKey
	Limit      int // -1 when absent
	Offset     int // 0 when absent
}

// SelectCol is one output column with an optional alias.
type SelectCol struct {
	E     Expr
	Alias string
}

// TableRef is a FROM item: either a base table, a parenthesized subquery, or
// a join of two table refs.
type TableRef struct {
	// Base table:
	Table string
	Alias string
	// Subquery (Table empty):
	Sub *Stmt
	// Join (Table empty, Sub nil):
	Join *JoinRef
}

// JoinRef is an explicit join in the FROM clause.
type JoinRef struct {
	Left, Right TableRef
	LeftOuter   bool
	On          Expr
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	E    Expr
	Desc bool
}

// Expr is a surface expression node. Nodes the semantic analyzer reports
// errors against carry Pos, their 1-based byte position in the source text
// (0 when the node was built programmatically rather than parsed).
type Expr interface{ sqlExpr() }

// Ident is a possibly-qualified column reference.
type Ident struct {
	Qual string
	Name string
	Pos  int
}

// NumLit is an integer or float literal (Float reports which).
type NumLit struct {
	Int   int64
	Float float64
	IsFlt bool
	Pos   int
}

// StrLit is a string literal.
type StrLit struct{ S string }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ B bool }

// NullLit is NULL.
type NullLit struct{}

// Binary is a binary operator: comparison, arithmetic, ||, AND, OR.
type Binary struct {
	Op   string
	L, R Expr
	Pos  int // position of the operator
}

// Unary is NOT or unary minus.
type Unary struct {
	Op string
	E  Expr
}

// IsNull is "expr IS [NOT] NULL".
type IsNull struct {
	E   Expr
	Not bool
}

// InList is "expr [NOT] IN (v1, v2, …)".
type InList struct {
	E    Expr
	List []Expr
	Not  bool
}

// InSub is "expr [NOT] IN (SELECT …)".
type InSub struct {
	E   Expr
	Sub *Stmt
	Not bool
}

// Quant is "expr op ANY|ALL (SELECT …)".
type Quant struct {
	Op  string // comparison operator
	Any bool   // true for ANY/SOME, false for ALL
	E   Expr
	Sub *Stmt
}

// Exists is "[NOT] EXISTS (SELECT …)".
type Exists struct {
	Sub *Stmt
	Not bool
}

// ScalarSub is a parenthesized subquery used as a value.
type ScalarSub struct{ Sub *Stmt }

// Call is a function call — an aggregate or a registered scalar function;
// Star marks count(*), Distinct marks f(DISTINCT x).
type Call struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
	Pos      int
}

// Like is "expr [NOT] LIKE pattern".
type Like struct {
	E       Expr
	Pattern Expr
	Not     bool
	Pos     int
}

// CastExpr is "CAST(expr AS type)". Type is the spelled type name, resolved
// by the analyzer/translator via algebra.ParseCastType.
type CastExpr struct {
	E    Expr
	Type string
	Pos  int
}

// Between is "expr [NOT] BETWEEN lo AND hi".
type Between struct {
	E      Expr
	Lo, Hi Expr
	Not    bool
}

// CaseWhen is one WHEN … THEN … branch of a Case expression.
type CaseWhen struct {
	Cond   Expr
	Result Expr
}

// Case is "CASE [operand] WHEN … THEN … [WHEN …] [ELSE …] END". A non-nil
// Operand selects the simple form, whose WHEN expressions are compared to
// the operand with =; otherwise the WHEN expressions are boolean conditions
// (searched CASE).
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr // nil when absent (result NULL)
}

func (Ident) sqlExpr()     {}
func (NumLit) sqlExpr()    {}
func (StrLit) sqlExpr()    {}
func (BoolLit) sqlExpr()   {}
func (NullLit) sqlExpr()   {}
func (Binary) sqlExpr()    {}
func (Unary) sqlExpr()     {}
func (IsNull) sqlExpr()    {}
func (InList) sqlExpr()    {}
func (InSub) sqlExpr()     {}
func (Quant) sqlExpr()     {}
func (Exists) sqlExpr()    {}
func (ScalarSub) sqlExpr() {}
func (Call) sqlExpr()      {}
func (Between) sqlExpr()   {}
func (Case) sqlExpr()      {}
func (Like) sqlExpr()      {}
func (CastExpr) sqlExpr()  {}

// WalkExprs visits e and its sub-expressions in pre-order; fn returning
// false skips a node's children. Subquery statements (InSub/Quant/Exists/
// ScalarSub bodies) are not descended into — callers that care about nested
// statements type-switch inside fn and recurse themselves. Every traversal
// over the surface AST goes through this one walker, so a new expression
// node needs exactly one new arm here.
func WalkExprs(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case Binary:
		WalkExprs(x.L, fn)
		WalkExprs(x.R, fn)
	case Unary:
		WalkExprs(x.E, fn)
	case IsNull:
		WalkExprs(x.E, fn)
	case InList:
		WalkExprs(x.E, fn)
		for _, it := range x.List {
			WalkExprs(it, fn)
		}
	case InSub:
		WalkExprs(x.E, fn)
	case Quant:
		WalkExprs(x.E, fn)
	case Between:
		WalkExprs(x.E, fn)
		WalkExprs(x.Lo, fn)
		WalkExprs(x.Hi, fn)
	case Like:
		WalkExprs(x.E, fn)
		WalkExprs(x.Pattern, fn)
	case CastExpr:
		WalkExprs(x.E, fn)
	case Call:
		for _, arg := range x.Args {
			WalkExprs(arg, fn)
		}
	case Case:
		if x.Operand != nil {
			WalkExprs(x.Operand, fn)
		}
		for _, w := range x.Whens {
			WalkExprs(w.Cond, fn)
			WalkExprs(w.Result, fn)
		}
		if x.Else != nil {
			WalkExprs(x.Else, fn)
		}
	}
}

package sql

// The semantic analyzer: a typed name-resolution pass that runs between
// parsing and translation. It
//
//   - resolves column references against the FROM scopes (walking enclosing
//     scopes for correlated references) and reports unknown or ambiguous
//     names with their source position and user-visible spelling — never
//     with internal attribute names;
//   - resolves ORDER BY and GROUP BY ordinals against the select list,
//     replacing them with the referenced output column and erroring on
//     out-of-range positions, as PostgreSQL does ("ORDER BY position 5 is
//     not in select list");
//   - type-checks every expression bottom-up over types.Kind: cross-kind
//     comparisons (string vs. number), non-boolean conditions, non-numeric
//     arithmetic and ill-typed function calls are errors at analysis time
//     instead of silent three-valued Unknowns at run time;
//   - resolves function calls against the scalar function registry
//     (algebra.LookupFunc) and the aggregate set, enforcing clause
//     placement rules (no aggregates in WHERE, no nested aggregates) and
//     SQL's grouping rule (an output column of a grouped query must be a
//     grouping column or sit inside an aggregate).
//
// Base-table column kinds are inferred from the catalog data
// (catalog.Kinds); a column whose kind cannot be inferred — all NULL — is
// "unknown" and every operation over it is admitted and decided at run
// time. The analyzer mutates the statement only by substituting ordinals.

import (
	"fmt"
	"strings"

	"perm/internal/algebra"
	"perm/internal/types"
)

// Analyze runs semantic analysis over a parsed statement against an
// environment. On success the statement's GROUP BY / ORDER BY ordinals have
// been substituted with the select-list expressions they reference, and the
// statement is known to name-resolve and type-check; translation after a
// successful analysis only fails on constraints the analyzer leaves to the
// translator (e.g. subquery column counts).
//
// View bodies referenced by the statement are analyzed too, which
// substitutes any ordinals they contain in place — a write to the shared
// ViewDef AST. That write happens exactly once, at CREATE VIEW time: the DB
// layer compiles a probe query over every new view before publishing it, so
// by the time concurrent queries can see a view its body is
// ordinal-free and analysis of it is read-only.
func Analyze(env Env, stmt *Stmt) error {
	a := &analyzer{env: env, viewCols: map[string][]typedCol{}}
	_, err := a.stmt(stmt, nil)
	return err
}

// typedCol is one output column of an analyzed query block.
type typedCol struct {
	name string
	kind types.Kind // types.KindNull means "unknown"
}

// arel is one FROM item visible in a scope.
type arel struct {
	alias string
	cols  []typedCol
}

// colID identifies a column within one scope.
type colID struct{ rel, col int }

// ascope is the name environment of one query block, linked to the
// enclosing block for correlated references. While the output clauses of a
// grouped block are being checked, enforceGroups is set and resolutions
// landing here must name grouping columns (unless inside an aggregate).
type ascope struct {
	outer         *ascope
	rels          []arel
	enforceGroups bool
	groupCols     map[colID]bool
	groupExprs    []Expr
	groupKinds    []types.Kind
}

type analyzer struct {
	env       Env
	viewStack []string
	viewCols  map[string][]typedCol
}

// exprCtx carries the clause context during expression typing.
type exprCtx struct {
	sc     *ascope
	block  *ascope // the scope of the block whose clause is being typed
	clause string  // for aggregate placement errors: "WHERE", "JOIN conditions", …
	aggOK  bool    // aggregate calls allowed here
	inAgg  bool    // currently typing an aggregate argument (nested-agg detection)
}

// errAt formats an analyzer error, prefixing the source position when known.
func errAt(pos int, format string, args ...any) error {
	if pos > 0 {
		return fmt.Errorf("sql: position %d: %s", pos, fmt.Sprintf(format, args...))
	}
	return fmt.Errorf("sql: %s", fmt.Sprintf(format, args...))
}

// comparable reports whether two kinds can meet in a comparison: unknowns
// compare with anything, numerics with numerics, otherwise kinds must match.
func comparableKinds(a, b types.Kind) bool {
	if a == types.KindNull || b == types.KindNull || a == b {
		return true
	}
	numeric := func(k types.Kind) bool { return k == types.KindInt || k == types.KindFloat }
	return numeric(a) && numeric(b)
}

func isNumericKind(k types.Kind) bool {
	return k == types.KindNull || k == types.KindInt || k == types.KindFloat
}

func isStringKind(k types.Kind) bool {
	return k == types.KindNull || k == types.KindString
}

func isBoolKind(k types.Kind) bool {
	return k == types.KindNull || k == types.KindBool
}

// stmt analyzes a statement (select plus optional set-operation chain) and
// returns its output columns.
func (a *analyzer) stmt(st *Stmt, outer *ascope) ([]typedCol, error) {
	left, err := a.selectStmt(st.Left, outer)
	if err != nil {
		return nil, err
	}
	if st.SetOp == nil {
		return left, nil
	}
	right, err := a.stmt(st.SetOp.Right, outer)
	if err != nil {
		return nil, err
	}
	if len(left) != len(right) {
		return nil, fmt.Errorf("sql: %s of %d and %d columns", st.SetOp.Kind, len(left), len(right))
	}
	out := make([]typedCol, len(left))
	for i := range left {
		k, err := unifyKinds(left[i].kind, right[i].kind)
		if err != nil {
			return nil, fmt.Errorf("sql: %s types %s and %s cannot be matched",
				st.SetOp.Kind, left[i].kind, right[i].kind)
		}
		out[i] = typedCol{name: left[i].name, kind: k}
	}
	return out, nil
}

// unifyKinds merges the kinds of two expressions feeding one result column
// (set-operation arms, CASE branches).
func unifyKinds(l, r types.Kind) (types.Kind, error) {
	switch {
	case l == types.KindNull:
		return r, nil
	case r == types.KindNull || l == r:
		return l, nil
	case isNumericKind(l) && isNumericKind(r):
		return types.KindFloat, nil
	default:
		return types.KindNull, fmt.Errorf("kinds %s and %s do not unify", l, r)
	}
}

// selectStmt analyzes one SELECT block and returns its output columns.
func (a *analyzer) selectStmt(sel *SelectStmt, outer *ascope) ([]typedCol, error) {
	sc := &ascope{outer: outer}
	for _, ref := range sel.From {
		rels, err := a.fromRef(ref, outer)
		if err != nil {
			return nil, err
		}
		sc.rels = append(sc.rels, rels...)
	}

	// GROUP BY: substitute ordinals, reject aggregates.
	for i, g := range sel.GroupBy {
		if lit, val, ok := ordinalLit(g); ok {
			if sel.Star {
				return nil, fmt.Errorf("sql: SELECT * cannot be combined with GROUP BY")
			}
			if lit.IsFlt {
				return nil, errAt(lit.Pos, "non-integer constant in GROUP BY")
			}
			if val < 1 || val > int64(len(sel.Cols)) {
				return nil, errAt(lit.Pos, "GROUP BY position %d is not in select list", val)
			}
			sel.GroupBy[i] = deOrdinal(sel.Cols[val-1].E)
		}
		if hasAggCall(sel.GroupBy[i]) {
			return nil, fmt.Errorf("sql: aggregate functions are not allowed in GROUP BY")
		}
	}

	// WHERE: boolean condition, no aggregates.
	if sel.Where != nil {
		if err := a.typeCond(sel.Where, exprCtx{sc: sc, block: sc, clause: "WHERE"}, "WHERE"); err != nil {
			return nil, err
		}
	}

	// GROUP BY expressions type-check against the pre-aggregation scope.
	groupCols := map[colID]bool{}
	groupKinds := make([]types.Kind, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		k, err := a.typeExpr(g, exprCtx{sc: sc, block: sc, clause: "GROUP BY"})
		if err != nil {
			return nil, err
		}
		groupKinds[i] = k
		if id, ok := g.(Ident); ok {
			if hit, n := sc.lookup(id); n == 1 {
				groupCols[hit] = true
			}
		}
	}

	// The block is grouped if it has grouping columns or any aggregate call
	// in its output clauses; from here on, output expressions must be built
	// from grouping columns and aggregates.
	grouped := len(sel.GroupBy) > 0
	if !grouped {
		for _, c := range sel.Cols {
			grouped = grouped || hasAggCall(c.E)
		}
		if sel.Having != nil {
			grouped = grouped || hasAggCall(sel.Having)
		}
		for _, k := range sel.OrderBy {
			grouped = grouped || hasAggCall(k.E)
		}
	}
	if grouped {
		sc.enforceGroups = true
		sc.groupCols = groupCols
		sc.groupExprs = sel.GroupBy
		sc.groupKinds = groupKinds
	}

	// Output columns.
	var out []typedCol
	if sel.Star {
		for _, r := range sc.rels {
			out = append(out, r.cols...)
		}
		if len(sel.From) == 0 {
			return nil, fmt.Errorf("sql: SELECT * with no tables specified is not valid")
		}
	} else {
		for i, c := range sel.Cols {
			k, err := a.typeExpr(c.E, exprCtx{sc: sc, block: sc, clause: "the select list", aggOK: true})
			if err != nil {
				return nil, err
			}
			out = append(out, typedCol{name: outputName(c, i), kind: k})
		}
	}

	if sel.Having != nil {
		if err := a.typeCond(sel.Having, exprCtx{sc: sc, block: sc, clause: "HAVING", aggOK: true}, "HAVING"); err != nil {
			return nil, err
		}
	}

	// ORDER BY: substitute ordinals against the select list, then type the
	// keys. Keys resolve bare names against the output columns first (SQL's
	// output-alias rule), then against the block's scopes — modelled as a
	// synthetic innermost scope holding the output columns, which also gives
	// sublinks inside keys the output names the executor resolves for them.
	// Output columns that share a name but denote the same expression
	// (SELECT a, a FROM r, or SELECT a, r.a) collapse to one entry: a bare
	// ORDER BY reference to that name is unambiguous, as in PostgreSQL.
	// Different expressions under one name stay distinct, so referencing
	// the name is the ambiguity error PostgreSQL raises too.
	ordCols := out
	if !sel.Star {
		sameCol := func(x, y Ident) bool {
			xsc, xid, xn := resolveChain(sc, x)
			ysc, yid, yn := resolveChain(sc, y)
			return xn == 1 && yn == 1 && xsc == ysc && xid == yid
		}
		ordCols = make([]typedCol, 0, len(out))
		first := map[string]int{} // output name → select-list index of first bearer
		for i, c := range out {
			if j, dup := first[c.name]; dup {
				if astExprEqualFn(sel.Cols[i].E, sel.Cols[j].E, sameCol) {
					continue
				}
			} else {
				first[c.name] = i
			}
			ordCols = append(ordCols, c)
		}
	}
	scOrd := &ascope{outer: sc, rels: []arel{{cols: ordCols}}}
	for i, key := range sel.OrderBy {
		if lit, val, ok := ordinalLit(key.E); ok {
			if lit.IsFlt {
				return nil, errAt(lit.Pos, "non-integer constant in ORDER BY")
			}
			if val < 1 || val > int64(len(out)) {
				return nil, errAt(lit.Pos, "ORDER BY position %d is not in select list", val)
			}
			sub, retype := a.ordinalKey(sel, sc, int(val), lit.Pos)
			sel.OrderBy[i].E = sub
			if !retype {
				// The substitute positionally names out[pos-1] or is the
				// already-typed select-list expression; re-resolving it by
				// name could spuriously reject duplicate output names
				// (SELECT a, a FROM r ORDER BY 1), which are no ambiguity
				// for an ordinal.
				continue
			}
		}
		ctx := exprCtx{sc: scOrd, block: sc, clause: "ORDER BY", aggOK: true}
		if _, err := a.typeExpr(sel.OrderBy[i].E, ctx); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ordinalKey builds the substitute expression for an ORDER BY ordinal and
// reports whether it still needs typing. The substitute is the output
// column's alias where that is positionally sound — the alias is unique AND
// shadows no source column, so the translator cannot re-resolve it to a
// different column — the select-list expression otherwise, and for SELECT *
// the qualified source column (typed afterwards, so a star over duplicate
// unaliased tables fails at analysis with the user-facing ambiguity error
// rather than leaking internal names at run time).
func (a *analyzer) ordinalKey(sel *SelectStmt, sc *ascope, pos, litPos int) (Expr, bool) {
	if sel.Star {
		n := 0
		for _, r := range sc.rels {
			for _, c := range r.cols {
				n++
				if n == pos {
					return Ident{Qual: r.alias, Name: c.name, Pos: litPos}, true
				}
			}
		}
		// Unreachable: pos was range-checked against the output width.
	}
	col := sel.Cols[pos-1]
	if col.Alias != "" {
		dup := 0
		for _, c := range sel.Cols {
			if c.Alias == col.Alias {
				dup++
			}
		}
		if _, n := sc.lookup(Ident{Name: col.Alias}); dup == 1 && n == 0 {
			return Ident{Name: col.Alias, Pos: litPos}, false
		}
	}
	if id, ok := col.E.(Ident); ok {
		// Sorting by the source column is sorting by this output position.
		// A bare unqualified name is only positionally sound when it names
		// exactly this output column (the translator resolves bare ORDER BY
		// names against the output schema first); otherwise — the name is
		// duplicated, or another column's alias shadows it — qualify the
		// source column so the engine's hidden-key machinery sorts by it.
		// Known divergence: the qualified form under SELECT DISTINCT is a
		// loud hidden-key error where PostgreSQL sorts — never wrong order.
		if id.Qual != "" {
			return id, false
		}
		count, self := 0, false
		for j, c := range sel.Cols {
			if outputName(c, j) == id.Name {
				count++
				self = self || j == pos-1
			}
		}
		if count == 1 && self {
			return id, false
		}
		if scope, hit, n := resolveChain(sc, id); n == 1 && scope == sc {
			return Ident{Qual: sc.rels[hit.rel].alias, Name: id.Name, Pos: litPos}, false
		}
		return id, false
	}
	return deOrdinal(col.E), false
}

// ordinalLit recognizes a bare — possibly negated — numeric literal used as
// an ORDER BY or GROUP BY key, with its signed value. PostgreSQL folds the
// unary minus into the constant, so ORDER BY -1 errors as "position -1"
// rather than silently sorting by a constant.
func ordinalLit(e Expr) (lit NumLit, val int64, ok bool) {
	switch x := e.(type) {
	case NumLit:
		return x, x.Int, true
	case Unary:
		if x.Op == "-" {
			if l, isLit := x.E.(NumLit); isLit {
				return l, -l.Int, true
			}
		}
	}
	return NumLit{}, 0, false
}

// deOrdinal guards ordinal substitution against re-interpretation: if the
// select-list expression an ordinal resolves to is itself a bare (possibly
// negated) numeric literal (SELECT a, 5 FROM r ORDER BY 2), substituting it
// verbatim would leave a literal sort/group key that the NEXT analysis of
// the same AST — a view body is analyzed on every referencing query — would
// read as a new ordinal. Wrapping the literal in a semantically-identity
// CAST keeps the value and kind while making the substitution idempotent.
func deOrdinal(e Expr) Expr {
	lit, _, ok := ordinalLit(e)
	if !ok {
		return e
	}
	typ := "integer"
	if lit.IsFlt {
		typ = "float"
	}
	return CastExpr{E: e, Type: typ, Pos: lit.Pos}
}

// fromRef analyzes one FROM item into scope entries.
func (a *analyzer) fromRef(ref TableRef, outer *ascope) ([]arel, error) {
	switch {
	case ref.Join != nil:
		l, err := a.fromRef(ref.Join.Left, outer)
		if err != nil {
			return nil, err
		}
		r, err := a.fromRef(ref.Join.Right, outer)
		if err != nil {
			return nil, err
		}
		rels := append(l, r...)
		// The ON condition sees the join's own relations plus the block's
		// enclosing scopes — not sibling FROM items.
		joinSc := &ascope{outer: outer, rels: rels}
		ctx := exprCtx{sc: joinSc, block: joinSc, clause: "JOIN conditions"}
		if err := a.typeCond(ref.Join.On, ctx, "JOIN/ON"); err != nil {
			return nil, err
		}
		return rels, nil
	case ref.Sub != nil:
		cols, err := a.stmt(ref.Sub, nil) // derived tables cannot correlate
		if err != nil {
			return nil, err
		}
		return []arel{{alias: ref.Alias, cols: cols}}, nil
	default:
		cols, err := a.tableCols(ref.Table)
		if err != nil {
			return nil, err
		}
		alias := ref.Alias
		if alias == "" {
			alias = ref.Table
		}
		return []arel{{alias: alias, cols: cols}}, nil
	}
}

// tableCols returns the typed columns of a base table or view.
func (a *analyzer) tableCols(name string) ([]typedCol, error) {
	if def, ok := a.env.Views[name]; ok {
		if cols, done := a.viewCols[name]; done {
			return cols, nil
		}
		for _, n := range a.viewStack {
			if n == name {
				return nil, fmt.Errorf("sql: cyclic view definition involving %q", name)
			}
		}
		a.viewStack = append(a.viewStack, name)
		cols, err := a.stmt(def.Body, nil)
		a.viewStack = a.viewStack[:len(a.viewStack)-1]
		if err != nil {
			return nil, fmt.Errorf("sql: expanding view %q: %w", name, err)
		}
		a.viewCols[name] = cols
		return cols, nil
	}
	sch, err := a.env.Catalog.Schema(name)
	if err != nil {
		return nil, err
	}
	kinds, err := a.env.Catalog.Kinds(name)
	if err != nil {
		return nil, err
	}
	cols := make([]typedCol, sch.Len())
	for i, attr := range sch.Attrs {
		cols[i] = typedCol{name: attr.Name, kind: kinds[i]}
	}
	return cols, nil
}

// lookup locates an identifier within this single scope, returning the
// match count (0: resolve outward; 1: found; >1: ambiguous) and, for a
// unique match, its column identity.
func (sc *ascope) lookup(id Ident) (colID, int) {
	found, n := colID{}, 0
	for ri, r := range sc.rels {
		if id.Qual != "" && id.Qual != r.alias {
			continue
		}
		for ci, c := range r.cols {
			if c.name == id.Name {
				found = colID{rel: ri, col: ci}
				n++
			}
		}
	}
	return found, n
}

// spelled renders an identifier the way the user wrote it.
func spelled(id Ident) string {
	if id.Qual != "" {
		return id.Qual + "." + id.Name
	}
	return id.Name
}

// resolve finds an identifier in the scope chain, innermost first, applying
// the grouping rule of any scope it lands in.
func (a *analyzer) resolve(id Ident, ctx exprCtx) (types.Kind, error) {
	for sc := ctx.sc; sc != nil; sc = sc.outer {
		hit, n := sc.lookup(id)
		if n == 0 {
			continue
		}
		if n > 1 {
			return types.KindNull, errAt(id.Pos, "column reference %q is ambiguous", spelled(id))
		}
		if sc.enforceGroups && !sc.groupCols[hit] {
			return types.KindNull, errAt(id.Pos,
				"column %q must appear in the GROUP BY clause or be used in an aggregate function", spelled(id))
		}
		return sc.rels[hit.rel].cols[hit.col].kind, nil
	}
	return types.KindNull, errAt(id.Pos, "column %q does not exist", spelled(id))
}

// exprMatchesGroup compares a candidate expression against one grouping
// expression of the grouped scope target: structural equality with
// identifiers compared by resolution — the candidate's identifiers resolve
// from the current chain, the grouping expression's from the grouped block
// — so qualified and unqualified spellings of one column match, and a
// shadowed inner column never matches an outer grouping column.
func (a *analyzer) exprMatchesGroup(e, g Expr, ctx exprCtx, target *ascope) bool {
	return astExprEqualFn(e, g, func(x, y Ident) bool {
		xsc, xid, xn := resolveChain(ctx.sc, x)
		ysc, yid, yn := resolveChain(target, y)
		return xn == 1 && yn == 1 && xsc == ysc && xid == yid
	})
}

// resolveChain walks a scope chain for an identifier, returning the first
// scope with any match, the column for a unique match, and the match count.
func resolveChain(start *ascope, id Ident) (*ascope, colID, int) {
	for sc := start; sc != nil; sc = sc.outer {
		if hit, n := sc.lookup(id); n > 0 {
			return sc, hit, n
		}
	}
	return nil, colID{}, 0
}

// typeCond types a clause condition and requires a boolean (or unknown)
// result.
func (a *analyzer) typeCond(e Expr, ctx exprCtx, clause string) error {
	k, err := a.typeExpr(e, ctx)
	if err != nil {
		return err
	}
	if !isBoolKind(k) {
		return fmt.Errorf("sql: argument of %s must be type boolean, not type %s", clause, k)
	}
	return nil
}

// typeExpr types an expression bottom-up, resolving names and functions and
// rejecting kind mismatches. The returned kind is types.KindNull when it
// cannot be determined statically.
func (a *analyzer) typeExpr(e Expr, ctx exprCtx) (types.Kind, error) {
	// A non-identifier expression equal to a grouping expression of an
	// enclosing grouped scope is that grouping column — admitted as a
	// whole, not descended into (SELECT a+1 FROM r GROUP BY a+1). The
	// comparison resolves identifiers rather than comparing spellings, so
	// GROUP BY r.a+1 matches a select-list a+1 (and vice versa) while an
	// inner-scope column shadowing an outer grouping column does not.
	// Plain identifiers skip the shortcut — resolve applies the grouping
	// rule via the resolved column identity.
	if _, isIdent := e.(Ident); !isIdent {
		for sc := ctx.sc; sc != nil; sc = sc.outer {
			if !sc.enforceGroups {
				continue
			}
			for i, g := range sc.groupExprs {
				if a.exprMatchesGroup(e, g, ctx, sc) {
					return sc.groupKinds[i], nil
				}
			}
		}
	}

	switch x := e.(type) {
	case Ident:
		return a.resolve(x, ctx)
	case NumLit:
		if x.IsFlt {
			return types.KindFloat, nil
		}
		return types.KindInt, nil
	case StrLit:
		return types.KindString, nil
	case BoolLit:
		return types.KindBool, nil
	case NullLit:
		return types.KindNull, nil
	case Binary:
		return a.typeBinary(x, ctx)
	case Unary:
		k, err := a.typeExpr(x.E, ctx)
		if err != nil {
			return types.KindNull, err
		}
		switch x.Op {
		case "NOT":
			if !isBoolKind(k) {
				return types.KindNull, fmt.Errorf("sql: argument of NOT must be type boolean, not type %s", k)
			}
			return types.KindBool, nil
		case "-":
			if !isNumericKind(k) {
				return types.KindNull, fmt.Errorf("sql: operator does not exist: - %s", k)
			}
			return k, nil
		default:
			return types.KindNull, fmt.Errorf("sql: unknown unary operator %q", x.Op)
		}
	case IsNull:
		if _, err := a.typeExpr(x.E, ctx); err != nil {
			return types.KindNull, err
		}
		return types.KindBool, nil
	case InList:
		k, err := a.typeExpr(x.E, ctx)
		if err != nil {
			return types.KindNull, err
		}
		for _, item := range x.List {
			ik, err := a.typeExpr(item, ctx)
			if err != nil {
				return types.KindNull, err
			}
			if !comparableKinds(k, ik) {
				return types.KindNull, fmt.Errorf("sql: operator does not exist: %s = %s", k, ik)
			}
		}
		return types.KindBool, nil
	case InSub:
		k, err := a.typeExpr(x.E, ctx)
		if err != nil {
			return types.KindNull, err
		}
		cols, err := a.stmt(x.Sub, ctx.sc)
		if err != nil {
			return types.KindNull, err
		}
		if len(cols) == 1 && !comparableKinds(k, cols[0].kind) {
			return types.KindNull, fmt.Errorf("sql: operator does not exist: %s = %s", k, cols[0].kind)
		}
		return types.KindBool, nil
	case Quant:
		k, err := a.typeExpr(x.E, ctx)
		if err != nil {
			return types.KindNull, err
		}
		cols, err := a.stmt(x.Sub, ctx.sc)
		if err != nil {
			return types.KindNull, err
		}
		if len(cols) == 1 && !comparableKinds(k, cols[0].kind) {
			return types.KindNull, fmt.Errorf("sql: operator does not exist: %s %s %s", k, x.Op, cols[0].kind)
		}
		return types.KindBool, nil
	case Exists:
		if _, err := a.stmt(x.Sub, ctx.sc); err != nil {
			return types.KindNull, err
		}
		return types.KindBool, nil
	case ScalarSub:
		cols, err := a.stmt(x.Sub, ctx.sc)
		if err != nil {
			return types.KindNull, err
		}
		if len(cols) == 1 {
			return cols[0].kind, nil
		}
		return types.KindNull, nil // width errors are the translator's
	case Between:
		k, err := a.typeExpr(x.E, ctx)
		if err != nil {
			return types.KindNull, err
		}
		for _, bound := range []Expr{x.Lo, x.Hi} {
			bk, err := a.typeExpr(bound, ctx)
			if err != nil {
				return types.KindNull, err
			}
			if !comparableKinds(k, bk) {
				return types.KindNull, fmt.Errorf("sql: operator does not exist: %s BETWEEN %s", k, bk)
			}
		}
		return types.KindBool, nil
	case Like:
		l, err := a.typeExpr(x.E, ctx)
		if err != nil {
			return types.KindNull, err
		}
		r, err := a.typeExpr(x.Pattern, ctx)
		if err != nil {
			return types.KindNull, err
		}
		if !isStringKind(l) || !isStringKind(r) {
			return types.KindNull, errAt(x.Pos, "operator does not exist: %s LIKE %s", l, r)
		}
		return types.KindBool, nil
	case CastExpr:
		to, ok := algebra.ParseCastType(x.Type)
		if !ok {
			return types.KindNull, errAt(x.Pos, "type %q does not exist", x.Type)
		}
		k, err := a.typeExpr(x.E, ctx)
		if err != nil {
			return types.KindNull, err
		}
		if !types.CanCast(k, to) {
			return types.KindNull, errAt(x.Pos, "cannot cast type %s to %s", k, to)
		}
		return to, nil
	case Case:
		return a.typeCase(x, ctx)
	case Call:
		return a.typeCall(x, ctx)
	default:
		return types.KindNull, fmt.Errorf("sql: unsupported expression %T", e)
	}
}

func (a *analyzer) typeBinary(x Binary, ctx exprCtx) (types.Kind, error) {
	l, err := a.typeExpr(x.L, ctx)
	if err != nil {
		return types.KindNull, err
	}
	r, err := a.typeExpr(x.R, ctx)
	if err != nil {
		return types.KindNull, err
	}
	switch x.Op {
	case "AND", "OR":
		for _, k := range []types.Kind{l, r} {
			if !isBoolKind(k) {
				return types.KindNull, errAt(x.Pos, "argument of %s must be type boolean, not type %s", x.Op, k)
			}
		}
		return types.KindBool, nil
	case "=", "<>", "<", "<=", ">", ">=":
		if !comparableKinds(l, r) {
			return types.KindNull, errAt(x.Pos, "operator does not exist: %s %s %s", l, x.Op, r)
		}
		return types.KindBool, nil
	case "||":
		for _, k := range []types.Kind{l, r} {
			if !isStringKind(k) {
				return types.KindNull, errAt(x.Pos, "operator does not exist: %s || %s", l, r)
			}
		}
		return types.KindString, nil
	case "+", "-", "*", "/", "%":
		if !isNumericKind(l) || !isNumericKind(r) {
			return types.KindNull, errAt(x.Pos, "operator does not exist: %s %s %s", l, x.Op, r)
		}
		if x.Op == "%" && (l == types.KindFloat || r == types.KindFloat) {
			return types.KindNull, errAt(x.Pos, "operator does not exist: %s %% %s", l, r)
		}
		switch {
		case l == types.KindFloat || r == types.KindFloat:
			return types.KindFloat, nil
		case l == types.KindInt && r == types.KindInt:
			return types.KindInt, nil
		default:
			return types.KindNull, nil
		}
	default:
		return types.KindNull, errAt(x.Pos, "unknown operator %q", x.Op)
	}
}

func (a *analyzer) typeCase(x Case, ctx exprCtx) (types.Kind, error) {
	var operandKind types.Kind
	if x.Operand != nil {
		k, err := a.typeExpr(x.Operand, ctx)
		if err != nil {
			return types.KindNull, err
		}
		operandKind = k
	}
	result := types.KindNull
	branches := make([]Expr, 0, len(x.Whens)+1)
	for _, w := range x.Whens {
		ck, err := a.typeExpr(w.Cond, ctx)
		if err != nil {
			return types.KindNull, err
		}
		if x.Operand != nil {
			if !comparableKinds(operandKind, ck) {
				return types.KindNull, fmt.Errorf("sql: operator does not exist: %s = %s", operandKind, ck)
			}
		} else if !isBoolKind(ck) {
			return types.KindNull, fmt.Errorf("sql: argument of CASE WHEN must be type boolean, not type %s", ck)
		}
		branches = append(branches, w.Result)
	}
	if x.Else != nil {
		branches = append(branches, x.Else)
	}
	for _, b := range branches {
		bk, err := a.typeExpr(b, ctx)
		if err != nil {
			return types.KindNull, err
		}
		merged, err := unifyKinds(result, bk)
		if err != nil {
			return types.KindNull, fmt.Errorf("sql: CASE types %s and %s cannot be matched", result, bk)
		}
		result = merged
	}
	return result, nil
}

func (a *analyzer) typeCall(x Call, ctx exprCtx) (types.Kind, error) {
	if def, ok := algebra.LookupFunc(x.Name); ok {
		if x.Star || x.Distinct {
			return types.KindNull, errAt(x.Pos, "%s is not an aggregate function", x.Name)
		}
		kinds := make([]types.Kind, len(x.Args))
		for i, arg := range x.Args {
			k, err := a.typeExpr(arg, ctx)
			if err != nil {
				return types.KindNull, err
			}
			kinds[i] = k
		}
		if len(x.Args) < def.MinArgs || len(x.Args) > def.MaxArgs {
			return types.KindNull, errAt(x.Pos, "function %s(%s) does not exist", x.Name, kindList(kinds))
		}
		for i, k := range kinds {
			if k != types.KindNull && def.Args[i] != types.KindNull && k != def.Args[i] {
				return types.KindNull, errAt(x.Pos, "function %s(%s) does not exist", x.Name, kindList(kinds))
			}
		}
		return def.Result, nil
	}
	if _, ok := aggFns[x.Name]; ok {
		if !ctx.aggOK {
			return types.KindNull, errAt(x.Pos, "aggregate functions are not allowed in %s", ctx.clause)
		}
		if ctx.inAgg {
			return types.KindNull, errAt(x.Pos, "aggregate function calls cannot be nested")
		}
		if x.Star {
			if x.Name != "count" {
				return types.KindNull, errAt(x.Pos, "%s(*) is not valid", x.Name)
			}
			return types.KindInt, nil
		}
		if len(x.Args) != 1 {
			return types.KindNull, errAt(x.Pos, "%s takes exactly one argument", x.Name)
		}
		argCtx := ctx
		argCtx.inAgg = true
		// The aggregate's argument is computed below the aggregation — and
		// below the projection — of the aggregate's own block: it resolves
		// from the real block scope (an ORDER BY aggregate cannot see
		// output aliases, matching PostgreSQL), and that block's grouping
		// rule does not apply inside it — including for correlated
		// references made from subqueries nested in the argument, which
		// carry their own contexts. Enforcement is suspended only for the
		// owning block: references escaping further, to an outer grouped
		// block, stay enforced (the engine evaluates this aggregate above
		// that block's aggregation, where ungrouped columns no longer
		// exist).
		if ctx.block != nil {
			argCtx.sc = ctx.block
		}
		suspended := ctx.block != nil && ctx.block.enforceGroups
		if suspended {
			ctx.block.enforceGroups = false
		}
		k, err := a.typeExpr(x.Args[0], argCtx)
		if suspended {
			ctx.block.enforceGroups = true
		}
		if err != nil {
			return types.KindNull, err
		}
		switch x.Name {
		case "count":
			return types.KindInt, nil
		case "avg":
			if !isNumericKind(k) {
				return types.KindNull, errAt(x.Pos, "function avg(%s) does not exist", k)
			}
			return types.KindFloat, nil
		case "sum":
			if !isNumericKind(k) {
				return types.KindNull, errAt(x.Pos, "function sum(%s) does not exist", k)
			}
			return k, nil
		default: // min, max: any comparable kind, result follows the argument
			return k, nil
		}
	}
	kinds := make([]types.Kind, len(x.Args))
	for i, arg := range x.Args {
		k, err := a.typeExpr(arg, ctx)
		if err != nil {
			return types.KindNull, err
		}
		kinds[i] = k
	}
	return types.KindNull, errAt(x.Pos, "function %s(%s) does not exist", x.Name, kindList(kinds))
}

func kindList(kinds []types.Kind) string {
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = k.String()
	}
	return strings.Join(parts, ", ")
}

// hasAggCall reports an aggregate call in the expression, not descending
// into subqueries (their aggregates belong to the inner block).
func hasAggCall(e Expr) bool {
	found := false
	WalkExprs(e, func(n Expr) bool {
		if c, ok := n.(Call); ok {
			if _, isScalar := algebra.LookupFunc(c.Name); !isScalar {
				if _, isAgg := aggFns[c.Name]; isAgg {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// astExprEqualFn is structural equality over surface expressions with a
// pluggable identifier comparison (spelling-based for plain equality,
// resolution-based for grouping-expression matching). Subquery-bearing
// nodes compare by statement pointer — exactly what ordinal substitution
// produces when it shares a select-list expression into GROUP BY.
func astExprEqualFn(a, b Expr, identEq func(Ident, Ident) bool) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case Ident:
		y, ok := b.(Ident)
		return ok && identEq(x, y)
	case NumLit:
		y, ok := b.(NumLit)
		return ok && x.IsFlt == y.IsFlt && x.Int == y.Int && x.Float == y.Float
	case StrLit:
		y, ok := b.(StrLit)
		return ok && x.S == y.S
	case BoolLit:
		y, ok := b.(BoolLit)
		return ok && x.B == y.B
	case NullLit:
		_, ok := b.(NullLit)
		return ok
	case Binary:
		y, ok := b.(Binary)
		return ok && x.Op == y.Op && astExprEqualFn(x.L, y.L, identEq) && astExprEqualFn(x.R, y.R, identEq)
	case Unary:
		y, ok := b.(Unary)
		return ok && x.Op == y.Op && astExprEqualFn(x.E, y.E, identEq)
	case IsNull:
		y, ok := b.(IsNull)
		return ok && x.Not == y.Not && astExprEqualFn(x.E, y.E, identEq)
	case InList:
		y, ok := b.(InList)
		if !ok || x.Not != y.Not || len(x.List) != len(y.List) || !astExprEqualFn(x.E, y.E, identEq) {
			return false
		}
		for i := range x.List {
			if !astExprEqualFn(x.List[i], y.List[i], identEq) {
				return false
			}
		}
		return true
	case InSub:
		y, ok := b.(InSub)
		return ok && x.Not == y.Not && x.Sub == y.Sub && astExprEqualFn(x.E, y.E, identEq)
	case Quant:
		y, ok := b.(Quant)
		return ok && x.Op == y.Op && x.Any == y.Any && x.Sub == y.Sub && astExprEqualFn(x.E, y.E, identEq)
	case Exists:
		y, ok := b.(Exists)
		return ok && x.Not == y.Not && x.Sub == y.Sub
	case ScalarSub:
		y, ok := b.(ScalarSub)
		return ok && x.Sub == y.Sub
	case Between:
		y, ok := b.(Between)
		return ok && x.Not == y.Not && astExprEqualFn(x.E, y.E, identEq) && astExprEqualFn(x.Lo, y.Lo, identEq) && astExprEqualFn(x.Hi, y.Hi, identEq)
	case Like:
		y, ok := b.(Like)
		return ok && x.Not == y.Not && astExprEqualFn(x.E, y.E, identEq) && astExprEqualFn(x.Pattern, y.Pattern, identEq)
	case CastExpr:
		y, ok := b.(CastExpr)
		return ok && x.Type == y.Type && astExprEqualFn(x.E, y.E, identEq)
	case Call:
		y, ok := b.(Call)
		if !ok || x.Name != y.Name || x.Star != y.Star || x.Distinct != y.Distinct || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !astExprEqualFn(x.Args[i], y.Args[i], identEq) {
				return false
			}
		}
		return true
	case Case:
		y, ok := b.(Case)
		if !ok || len(x.Whens) != len(y.Whens) || !astExprEqualFn(x.Operand, y.Operand, identEq) || !astExprEqualFn(x.Else, y.Else, identEq) {
			return false
		}
		for i := range x.Whens {
			if !astExprEqualFn(x.Whens[i].Cond, y.Whens[i].Cond, identEq) || !astExprEqualFn(x.Whens[i].Result, y.Whens[i].Result, identEq) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

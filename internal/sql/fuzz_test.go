package sql

import (
	"testing"

	"perm/internal/catalog"
)

// FuzzParse asserts the parser never panics and either returns a statement
// or an error, for arbitrary input. Run longer with:
//
//	go test -fuzz FuzzParse ./internal/sql
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM r",
		"SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s)",
		"SELECT a, sum(b) AS s FROM r GROUP BY a HAVING sum(b) > 1 ORDER BY s DESC LIMIT 3",
		"SELECT * FROM (SELECT a FROM r) AS x LEFT JOIN s ON x.a = c",
		"SELECT a FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE c = a) AND b BETWEEN 1 AND 2",
		"SELECT a FROM r UNION ALL SELECT c FROM s INTERSECT SELECT d FROM s",
		"CREATE VIEW v AS SELECT a FROM r; garbage",
		"SELECT 'it''s' FROM r -- comment",
		"SELECT a FROM r WHERE a IN (1, 2.5, 'x', NULL)",
		"((((((((", "SELECT", ";;;", "\\x00", "SELECT a FROM r WHERE a <",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st, err := ParseStatement(input)
		if err == nil && st == nil {
			t.Fatal("nil statement without error")
		}
		// Whatever parses must also survive translation attempts without
		// panics (errors are fine — unknown relations etc.).
		if err == nil && st.Query != nil {
			_, _ = Compile(catalog.New(), input)
		}
	})
}

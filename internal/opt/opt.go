// Package opt is a small logical optimizer standing in for the PostgreSQL
// planner the Perm system relied on (§4.1: "the output of the provenance
// rewrite module is passed to the planner and is subject to the standard
// query optimization of PostgreSQL"). It performs the two transformations
// without which neither the TPC-H queries nor their provenance rewrites are
// executable on a materializing engine:
//
//   - selection decomposition and pushdown: σ over a cross-product chain is
//     split into conjuncts, single-relation predicates move onto their
//     relation;
//   - join extraction: equality predicates connecting two inputs of the
//     chain turn the cross products into (hash-)joins, ordered greedily so
//     every join is connected when possible.
//
// Predicates containing sublinks are never moved — they stay in a residual
// selection at the original level, where the evaluator's correlation scopes
// and the provenance rewrite placement remain valid.
package opt

import (
	"perm/internal/algebra"
	"perm/internal/schema"
	"perm/internal/types"
)

// Optimize rewrites the plan bottom-up, including the sublink queries
// embedded in operator expressions. The result is semantically equivalent
// (bag-equal output) to the input plan.
func Optimize(op algebra.Op) algebra.Op {
	switch o := op.(type) {
	case *algebra.Scan, *algebra.Values:
		return op
	case *algebra.Select:
		child := Optimize(o.Child)
		return optimizeSelect(o.Cond, child)
	case *algebra.Project:
		cols := make([]algebra.ProjExpr, len(o.Cols))
		for i, c := range o.Cols {
			cols[i] = algebra.ProjExpr{E: optimizeExpr(c.E), As: c.As, Qual: c.Qual}
		}
		return &algebra.Project{Child: Optimize(o.Child), Cols: cols, Distinct: o.Distinct}
	case *algebra.Cross:
		return &algebra.Cross{L: Optimize(o.L), R: Optimize(o.R)}
	case *algebra.Join:
		return &algebra.Join{L: Optimize(o.L), R: Optimize(o.R), Cond: optimizeExpr(o.Cond)}
	case *algebra.LeftJoin:
		return &algebra.LeftJoin{L: Optimize(o.L), R: Optimize(o.R), Cond: optimizeExpr(o.Cond)}
	case *algebra.Aggregate:
		gs := make([]algebra.GroupExpr, len(o.Group))
		for i, g := range o.Group {
			gs[i] = algebra.GroupExpr{E: optimizeExpr(g.E), As: g.As, Qual: g.Qual}
		}
		as := make([]algebra.AggExpr, len(o.Aggs))
		for i, a := range o.Aggs {
			na := a
			if a.Arg != nil {
				na.Arg = optimizeExpr(a.Arg)
			}
			as[i] = na
		}
		return &algebra.Aggregate{Child: Optimize(o.Child), Group: gs, Aggs: as}
	case *algebra.SetOp:
		return &algebra.SetOp{Kind: o.Kind, Bag: o.Bag, L: Optimize(o.L), R: Optimize(o.R)}
	case *algebra.Order:
		return &algebra.Order{Child: Optimize(o.Child), Keys: o.Keys}
	case *algebra.Limit:
		return &algebra.Limit{Child: Optimize(o.Child), N: o.N, Offset: o.Offset}
	default:
		return op
	}
}

// optimizeExpr optimizes the queries inside sublinks.
func optimizeExpr(e algebra.Expr) algebra.Expr {
	return algebra.MapExpr(e, func(x algebra.Expr) algebra.Expr {
		if sl, ok := x.(algebra.Sublink); ok {
			sl.Query = Optimize(sl.Query)
			return sl
		}
		return x
	})
}

// optimizeSelect rebuilds σ_cond(child) with pushdown and join extraction.
func optimizeSelect(cond algebra.Expr, child algebra.Op) algebra.Op {
	// Push through pure pass-through projections (the provenance rewrite
	// wraps cross products in attribute-reordering projections; PostgreSQL
	// pushes quals through them, and so must we or the rewritten TPC-H
	// plans join above raw cross products).
	if p, ok := child.(*algebra.Project); ok && pureReorder(p) && condPushable(cond, p.Child.Schema()) {
		return &algebra.Project{Child: optimizeSelect(cond, p.Child), Cols: p.Cols, Distinct: p.Distinct}
	}
	// Partially pass-through projections (e.g. the Move strategy's inner
	// projection computing sublink columns): push the sublink-free
	// conjuncts whose references all map to pass-through columns.
	if p, ok := child.(*algebra.Project); ok && !p.Distinct {
		var down, up []algebra.Expr
		for _, cj := range conjuncts(cond) {
			if !algebra.HasSublink(cj) && conjPushableThroughProject(cj, p) {
				down = append(down, cj)
			} else {
				up = append(up, cj)
			}
		}
		if len(down) > 0 {
			inner := optimizeSelect(algebra.Conj(down...), p.Child)
			pushed := &algebra.Project{Child: inner, Cols: p.Cols}
			if len(up) == 0 {
				return pushed
			}
			return &algebra.Select{Child: pushed, Cond: algebra.Conj(up...)}
		}
	}
	// Push left-side-only, sublink-free conjuncts below a left outer join:
	// left rows dropped by the predicate produce no output either way.
	if lj, ok := child.(*algebra.LeftJoin); ok {
		var down, up []algebra.Expr
		for _, cj := range conjuncts(cond) {
			if !algebra.HasSublink(cj) && resolvesIn(cj, lj.L.Schema()) {
				down = append(down, cj)
			} else {
				up = append(up, cj)
			}
		}
		if len(down) > 0 {
			pushed := &algebra.LeftJoin{L: optimizeSelect(algebra.Conj(down...), lj.L), R: lj.R, Cond: lj.Cond}
			if len(up) == 0 {
				return pushed
			}
			return &algebra.Select{Child: pushed, Cond: algebra.Conj(up...)}
		}
	}
	leaves := crossLeaves(child)
	conjs := conjuncts(optimizeExpr(cond))
	if len(leaves) == 1 {
		// Nothing to reorder; still merge nested selections.
		return &algebra.Select{Child: child, Cond: algebra.Conj(conjs...)}
	}

	var residual []algebra.Expr
	pushed := make([][]algebra.Expr, len(leaves)) // per-leaf predicates
	var joinPreds []algebra.Expr                  // two-sided equalities
	schemas := make([]schema.Schema, len(leaves))
	for i, l := range leaves {
		schemas[i] = l.Schema()
	}
	for _, cj := range conjs {
		if algebra.HasSublink(cj) {
			residual = append(residual, cj)
			continue
		}
		covered := coveredLeaves(cj, schemas)
		switch {
		case covered == nil:
			residual = append(residual, cj) // correlated or unresolvable
		case len(covered) == 1:
			pushed[covered[0]] = append(pushed[covered[0]], cj)
		case len(covered) == 2 && isEquiPred(cj):
			joinPreds = append(joinPreds, cj)
		default:
			residual = append(residual, cj)
		}
	}

	// Apply single-leaf predicates.
	for i := range leaves {
		if len(pushed[i]) > 0 {
			leaves[i] = &algebra.Select{Child: leaves[i], Cond: algebra.Conj(pushed[i]...)}
		}
	}

	// Greedy connected join order: start from leaf 0, repeatedly attach a
	// leaf connected by at least one join predicate; cross products only
	// when nothing connects.
	used := make([]bool, len(leaves))
	plan := leaves[0]
	used[0] = true
	remainingPreds := append([]algebra.Expr{}, joinPreds...)
	for count := 1; count < len(leaves); count++ {
		next, preds := pickConnected(plan, leaves, used, remainingPreds)
		if next < 0 {
			// No connected leaf: cross with the first unused one.
			for i := range leaves {
				if !used[i] {
					next = i
					break
				}
			}
		}
		if len(preds) > 0 {
			plan = &algebra.Join{L: plan, R: leaves[next], Cond: algebra.Conj(preds...)}
		} else {
			plan = &algebra.Cross{L: plan, R: leaves[next]}
		}
		used[next] = true
		remainingPreds = removePreds(remainingPreds, preds)
	}
	// Any join predicate never placed (e.g. spanning three leaves was
	// filtered earlier, so this covers predicates between leaves joined via
	// other paths) goes to the residual.
	residual = append(residual, remainingPreds...)
	if len(residual) == 0 {
		return plan
	}
	return &algebra.Select{Child: plan, Cond: algebra.Conj(residual...)}
}

// pureReorder reports whether a projection only passes attributes through
// under their original names and qualifiers (the shape the provenance
// rewrite emits to restore its schema invariant). Selections commute with
// such projections.
func pureReorder(p *algebra.Project) bool {
	if p.Distinct {
		return false
	}
	for _, c := range p.Cols {
		ref, ok := c.E.(algebra.AttrRef)
		if !ok || ref.Name != c.As || ref.Qual != c.Qual {
			return false
		}
	}
	return true
}

// condPushable reports whether every attribute reference the condition can
// resolve — including correlated references escaping its sublink queries —
// resolves unambiguously against the deeper schema. References that resolve
// nowhere below bind to enclosing scopes and are unaffected by the push.
func condPushable(cond algebra.Expr, below schema.Schema) bool {
	ok := true
	check := func(ref algebra.AttrRef) {
		if _, amb := below.Lookup(ref.Qual, ref.Name); amb {
			ok = false
		}
	}
	algebra.WalkExpr(cond, func(x algebra.Expr) bool {
		switch v := x.(type) {
		case algebra.AttrRef:
			check(v)
		case algebra.Sublink:
			for _, fv := range algebra.FreeVars(v.Query) {
				check(fv)
			}
			if v.Test != nil {
				algebra.WalkExpr(v.Test, func(y algebra.Expr) bool {
					if r, isRef := y.(algebra.AttrRef); isRef {
						check(r)
					}
					return ok
				})
			}
			return false
		}
		return ok
	})
	return ok
}

// conjPushableThroughProject reports whether every attribute reference of a
// (sublink-free) conjunct maps to a pass-through column of the projection
// and resolves to the same attribute below — i.e. the conjunct commutes
// with the projection. References the projection's schema does not provide
// bind to enclosing scopes; they must not be captured by the deeper schema.
func conjPushableThroughProject(cj algebra.Expr, p *algebra.Project) bool {
	outSch := p.Schema()
	below := p.Child.Schema()
	ok := true
	algebra.WalkExpr(cj, func(x algebra.Expr) bool {
		ref, isRef := x.(algebra.AttrRef)
		if !isRef {
			return ok
		}
		idx, amb := outSch.Lookup(ref.Qual, ref.Name)
		if amb {
			ok = false
			return false
		}
		if idx < 0 {
			// Correlated outward: pushing must not capture the name below.
			if bi, bamb := below.Lookup(ref.Qual, ref.Name); bi >= 0 || bamb {
				ok = false
			}
			return ok
		}
		src, isPass := p.Cols[idx].E.(algebra.AttrRef)
		if !isPass {
			ok = false
			return false
		}
		// The reference must resolve below to exactly the column the
		// projection passed through.
		want, wamb := below.Lookup(src.Qual, src.Name)
		got, gamb := below.Lookup(ref.Qual, ref.Name)
		if wamb || gamb || want < 0 || want != got {
			ok = false
		}
		return ok
	})
	return ok
}

// crossLeaves flattens a chain of Cross operators into its leaves, each
// optimized. Any non-Cross operator is a leaf.
func crossLeaves(op algebra.Op) []algebra.Op {
	if c, ok := op.(*algebra.Cross); ok {
		return append(crossLeaves(c.L), crossLeaves(c.R)...)
	}
	return []algebra.Op{op}
}

func conjuncts(e algebra.Expr) []algebra.Expr {
	if a, ok := e.(algebra.And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []algebra.Expr{e}
}

// coveredLeaves returns the indexes of the leaves a predicate's attribute
// references resolve in, or nil if any reference resolves in none of them
// (correlated) or ambiguously within one.
func coveredLeaves(e algebra.Expr, schemas []schema.Schema) []int {
	ok := true
	seen := map[int]bool{}
	algebra.WalkExpr(e, func(x algebra.Expr) bool {
		ref, isRef := x.(algebra.AttrRef)
		if !isRef {
			return ok
		}
		found := -1
		for i, s := range schemas {
			if idx, amb := s.Lookup(ref.Qual, ref.Name); amb {
				ok = false
				return false
			} else if idx >= 0 {
				if found >= 0 {
					ok = false // resolves in two leaves: ambiguous
					return false
				}
				found = i
			}
		}
		if found < 0 {
			ok = false
			return false
		}
		seen[found] = true
		return true
	})
	if !ok {
		return nil
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	return out
}

// isEquiPred reports whether the predicate is an equality (or =n) between
// two expressions — the shape the hash join can use.
func isEquiPred(e algebra.Expr) bool {
	switch c := e.(type) {
	case algebra.Cmp:
		return c.Op == types.CmpEq
	case algebra.NullEq:
		return true
	default:
		return false
	}
}

// pickConnected finds an unused leaf connected to the current plan by at
// least one join predicate and returns its index with all predicates that
// become valid once it joins.
func pickConnected(plan algebra.Op, leaves []algebra.Op, used []bool, preds []algebra.Expr) (int, []algebra.Expr) {
	for i := range leaves {
		if used[i] {
			continue
		}
		var here []algebra.Expr
		joined := plan.Schema().Concat(leaves[i].Schema())
		for _, p := range preds {
			if resolvesIn(p, joined) && !resolvesIn(p, plan.Schema()) && !resolvesIn(p, leaves[i].Schema()) {
				here = append(here, p)
			}
		}
		if len(here) > 0 {
			return i, here
		}
	}
	return -1, nil
}

// resolvesIn reports whether every attribute reference of e resolves
// (uniquely) in sch.
func resolvesIn(e algebra.Expr, sch schema.Schema) bool {
	ok := true
	algebra.WalkExpr(e, func(x algebra.Expr) bool {
		if ref, isRef := x.(algebra.AttrRef); isRef {
			if idx, amb := sch.Lookup(ref.Qual, ref.Name); idx < 0 || amb {
				ok = false
			}
		}
		return ok
	})
	return ok
}

func removePreds(all, picked []algebra.Expr) []algebra.Expr {
	var out []algebra.Expr
	for _, p := range all {
		keep := true
		for _, q := range picked {
			if algebra.ExprEqual(p, q) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, p)
		}
	}
	return out
}

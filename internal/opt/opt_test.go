package opt

import (
	"fmt"
	"testing"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/eval"
	"perm/internal/rel"
	"perm/internal/rewrite"
	"perm/internal/schema"
	"perm/internal/sql"
	"perm/internal/types"
)

func ints(vals ...int64) rel.Tuple {
	t := make(rel.Tuple, len(vals))
	for i, v := range vals {
		t[i] = types.NewInt(v)
	}
	return t
}

func testDB() *catalog.Catalog {
	c := catalog.New()
	c.Register("r", rel.FromTuples(schema.New("", "a", "b"), ints(1, 1), ints(2, 1), ints(3, 2)))
	c.Register("s", rel.FromTuples(schema.New("", "c", "d"), ints(1, 3), ints(2, 4), ints(4, 5)))
	c.Register("u", rel.FromTuples(schema.New("", "e"), ints(3), ints(4)))
	return c
}

// countOps counts operator node kinds in a plan (descending into sublinks).
func countOps(op algebra.Op) map[string]int {
	counts := map[string]int{}
	algebra.Walk(op, func(o algebra.Op) bool {
		counts[fmt.Sprintf("%T", o)]++
		return true
	})
	return counts
}

func TestJoinExtraction(t *testing.T) {
	c := testDB()
	tr, err := sql.Compile(c, "SELECT a, d, e FROM r, s, u WHERE a = c AND d > e AND b = 1")
	if err != nil {
		t.Fatal(err)
	}
	before, err := eval.New(c).Eval(tr.Plan)
	if err != nil {
		t.Fatal(err)
	}
	optimized := Optimize(tr.Plan)
	after, err := eval.New(c).Eval(optimized)
	if err != nil {
		t.Fatalf("optimized plan failed: %v\n%s", err, algebra.Indent(optimized))
	}
	if !after.Equal(before.WithSchema(after.Schema)) {
		t.Fatalf("optimizer changed semantics:\nbefore %s\nafter  %s", before, after)
	}
	counts := countOps(optimized)
	if counts["*algebra.Join"] == 0 {
		t.Errorf("expected a join after extraction:\n%s", algebra.Indent(optimized))
	}
}

func TestPushdownKeepsCorrelatedPredicatesInPlace(t *testing.T) {
	c := testDB()
	// The sublink predicate must stay at the top; the join predicate moves.
	q := "SELECT a FROM r, s WHERE a = c AND b = ANY (SELECT e FROM u WHERE e > d)"
	tr, err := sql.Compile(c, q)
	if err != nil {
		t.Fatal(err)
	}
	before, err := eval.New(c).Eval(tr.Plan)
	if err != nil {
		t.Fatal(err)
	}
	optimized := Optimize(tr.Plan)
	after, err := eval.New(c).Eval(optimized)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Equal(before.WithSchema(after.Schema)) {
		t.Fatalf("optimizer changed semantics of sublink query:\nbefore %s\nafter  %s", before, after)
	}
}

// TestOptimizePreservesSemantics fuzzes the optimizer against the naive
// plans over a set of query shapes, comparing bag-equality of results.
func TestOptimizePreservesSemantics(t *testing.T) {
	c := testDB()
	queries := []string{
		"SELECT * FROM r",
		"SELECT a, c FROM r, s WHERE a = c",
		"SELECT a, c, e FROM r, s, u WHERE a = c AND c = e",
		"SELECT a, c, e FROM r, s, u WHERE a = c AND b < e",
		"SELECT a FROM r, s WHERE a < c",
		"SELECT b, sum(a) AS t FROM r, s WHERE a = c GROUP BY b",
		"SELECT a FROM r WHERE a IN (SELECT c FROM s WHERE d > 3)",
		"SELECT a FROM r WHERE EXISTS (SELECT * FROM s, u WHERE c = e AND c = a)",
		"SELECT a FROM r LEFT JOIN s ON a = c WHERE b = 1",
		"SELECT a FROM r UNION SELECT c FROM s",
		"SELECT a FROM r WHERE a = (SELECT min(c) FROM s, u WHERE c = e)",
	}
	for _, q := range queries {
		tr, err := sql.Compile(c, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		before, err := eval.New(c).Eval(tr.Plan)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		optimized := Optimize(tr.Plan)
		after, err := eval.New(c).Eval(optimized)
		if err != nil {
			t.Fatalf("%s (optimized): %v\n%s", q, err, algebra.Indent(optimized))
		}
		if !after.Equal(before.WithSchema(after.Schema)) {
			t.Errorf("%s: optimizer changed result\nbefore %s\nafter  %s", q, before, after)
		}
	}
}

// TestPushdownThroughReorderProjection checks that selections commute with
// the pass-through projections the provenance rewrite emits, so the join
// extraction reaches the underlying cross products.
func TestPushdownThroughReorderProjection(t *testing.T) {
	c := testDB()
	tr, err := sql.Compile(c, "SELECT a FROM r, s WHERE a = c AND d > 3")
	if err != nil {
		t.Fatal(err)
	}
	res, err := rewrite.Rewrite(tr.Plan, rewrite.Gen)
	if err != nil {
		t.Fatal(err)
	}
	optimized := Optimize(res.Plan)
	counts := countOps(optimized)
	if counts["*algebra.Join"] == 0 {
		t.Errorf("join extraction blocked by reorder projection:\n%s", algebra.Indent(optimized))
	}
	if counts["*algebra.Cross"] != 0 {
		t.Errorf("cross product left behind:\n%s", algebra.Indent(optimized))
	}
	// Semantics preserved.
	before, err := eval.New(c).Eval(res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	after, err := eval.New(c).Eval(optimized)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Equal(before.WithSchema(after.Schema)) {
		t.Error("pushdown changed semantics")
	}
}

// TestPushdownThroughMoveProjection checks the partial rule: conjuncts over
// pass-through columns sink below a projection that also computes sublink
// columns (the Move strategy's inner projection).
func TestPushdownThroughMoveProjection(t *testing.T) {
	c := testDB()
	tr, err := sql.Compile(c, "SELECT a FROM r, s WHERE a = c AND b = ANY (SELECT e FROM u)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := rewrite.Rewrite(tr.Plan, rewrite.Move)
	if err != nil {
		t.Fatal(err)
	}
	optimized := Optimize(res.Plan)
	if countOps(optimized)["*algebra.Join"] == 0 {
		t.Errorf("a = c did not reach the cross product below the Move projection:\n%s", algebra.Indent(optimized))
	}
	before, err := eval.New(c).Eval(res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	after, err := eval.New(c).Eval(optimized)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Equal(before.WithSchema(after.Schema)) {
		t.Error("partial pushdown changed semantics")
	}
}

// TestPushdownLeftJoin checks left-side-only conjuncts sink below a left
// outer join.
func TestPushdownLeftJoin(t *testing.T) {
	c := testDB()
	tr, err := sql.Compile(c, "SELECT a FROM r LEFT JOIN s ON a = c WHERE b = 1 AND a < 3")
	if err != nil {
		t.Fatal(err)
	}
	before, err := eval.New(c).Eval(tr.Plan)
	if err != nil {
		t.Fatal(err)
	}
	optimized := Optimize(tr.Plan)
	after, err := eval.New(c).Eval(optimized)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Equal(before.WithSchema(after.Schema)) {
		t.Error("left join pushdown changed semantics")
	}
	// The top-level operator should no longer be the selection.
	if _, isSel := optimized.(*algebra.Select); isSel {
		t.Errorf("selection not pushed below left join:\n%s", algebra.Indent(optimized))
	}
}

// TestOptimizeRewrittenPlans runs the optimizer over provenance-rewritten
// plans of every strategy and checks result preservation — this is the
// production path (rewrite, then plan, then execute, as in Perm).
func TestOptimizeRewrittenPlans(t *testing.T) {
	c := testDB()
	queries := []string{
		"SELECT a FROM r WHERE a = ANY (SELECT c FROM s)",
		"SELECT a FROM r WHERE b < ALL (SELECT d FROM s WHERE c > 1)",
		"SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE c > 2)",
	}
	for _, q := range queries {
		tr, err := sql.Compile(c, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []rewrite.Strategy{rewrite.Gen, rewrite.Left, rewrite.Move} {
			res, err := rewrite.Rewrite(tr.Plan, strat)
			if err != nil {
				t.Fatal(err)
			}
			before, err := eval.New(c).Eval(res.Plan)
			if err != nil {
				t.Fatal(err)
			}
			optimized := Optimize(res.Plan)
			after, err := eval.New(c).Eval(optimized)
			if err != nil {
				t.Fatalf("%s/%v optimized: %v", q, strat, err)
			}
			if !after.Equal(before.WithSchema(after.Schema)) {
				t.Errorf("%s/%v: optimizer changed provenance result", q, strat)
			}
		}
	}
}

package synth

import (
	"errors"
	"math"
	"testing"

	"perm/internal/eval"
	"perm/internal/opt"
	"perm/internal/rel"
	"perm/internal/rewrite"
	"perm/internal/sql"
)

func TestCatalogDeterministicAndSized(t *testing.T) {
	w := Workload{InputSize: 200, SublinkSize: 50, Seed: 3}
	a := w.Catalog()
	b := w.Catalog()
	for _, name := range []string{"r1", "r2"} {
		ra, err := a.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		rb, _ := b.Relation(name)
		if !ra.Equal(rb) {
			t.Errorf("%s differs between runs", name)
		}
	}
	r1, _ := a.Relation("r1")
	if r1.Card() != 200 {
		t.Errorf("r1 card = %d", r1.Card())
	}
	r2, _ := a.Relation("r2")
	if r2.Card() != 50 {
		t.Errorf("r2 card = %d", r2.Card())
	}
}

func TestGaussianShape(t *testing.T) {
	w := Workload{InputSize: 5000, SublinkSize: 10, Seed: 9}
	cat := w.Catalog()
	r1, _ := cat.Relation("r1")
	var sum, sumSq float64
	_ = r1.Each(func(tp rel.Tuple, n int) error {
		v := float64(tp[0].Int())
		sum += v
		sumSq += v * v
		return nil
	})
	n := float64(r1.Card())
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	want := stddev(5000)
	if math.Abs(mean) > want/5 {
		t.Errorf("mean %.0f too far from 0 (sd %.0f)", mean, want)
	}
	if sd < want/2 || sd > want*2 {
		t.Errorf("sd %.0f outside [%0.f, %.0f]", sd, want/2, want*2)
	}
}

func TestQueriesRunAndStrategiesApply(t *testing.T) {
	w := Workload{InputSize: 300, SublinkSize: 100, Seed: 4}
	cat := w.Catalog()
	ev := eval.New(cat)
	for seed := int64(0); seed < 3; seed++ {
		for _, q := range []string{w.Q1(seed), w.Q2(seed)} {
			tr, err := sql.Compile(cat, q)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			if _, err := ev.Eval(opt.Optimize(tr.Plan)); err != nil {
				t.Fatalf("%s: %v", q, err)
			}
		}
	}
	// Strategy applicability per §4.2.2: all four strategies handle q1;
	// Unn has no rule for q2.
	tr1, _ := sql.Compile(cat, w.Q1(0))
	for _, s := range []rewrite.Strategy{rewrite.Gen, rewrite.Left, rewrite.Move, rewrite.Unn} {
		if _, err := rewrite.Rewrite(tr1.Plan, s); err != nil {
			t.Errorf("%v must apply to q1: %v", s, err)
		}
	}
	tr2, _ := sql.Compile(cat, w.Q2(0))
	for _, s := range []rewrite.Strategy{rewrite.Gen, rewrite.Left, rewrite.Move} {
		if _, err := rewrite.Rewrite(tr2.Plan, s); err != nil {
			t.Errorf("%v must apply to q2: %v", s, err)
		}
	}
	if _, err := rewrite.Rewrite(tr2.Plan, rewrite.Unn); !errors.Is(err, rewrite.ErrNotApplicable) {
		t.Errorf("Unn on q2 should be not applicable, got %v", err)
	}
}

// TestStrategiesAgreeOnSynthetic checks all applicable strategies compute
// identical provenance on moderate synthetic instances — the correctness
// backbone behind the Figure 7–9 performance comparison.
func TestStrategiesAgreeOnSynthetic(t *testing.T) {
	w := Workload{InputSize: 120, SublinkSize: 40, Seed: 8}
	cat := w.Catalog()
	ev := eval.New(cat)
	for seed := int64(0); seed < 2; seed++ {
		for qi, q := range []string{w.Q1(seed), w.Q2(seed)} {
			tr, err := sql.Compile(cat, q)
			if err != nil {
				t.Fatal(err)
			}
			strategies := []rewrite.Strategy{rewrite.Gen, rewrite.Left, rewrite.Move}
			if qi == 0 {
				strategies = append(strategies, rewrite.Unn)
			}
			var ref *rel.Relation
			for _, s := range strategies {
				res, err := rewrite.Rewrite(tr.Plan, s)
				if err != nil {
					t.Fatalf("%v: %v", s, err)
				}
				out, err := ev.Eval(opt.Optimize(res.Plan))
				if err != nil {
					t.Fatalf("%v: %v", s, err)
				}
				if ref == nil {
					ref = out
				} else if !out.Equal(ref.WithSchema(out.Schema)) {
					t.Errorf("q%d seed %d: %v disagrees with Gen (%d vs %d tuples)",
						qi+1, seed, s, out.Card(), ref.Card())
				}
			}
		}
	}
}

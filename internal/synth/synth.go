// Package synth generates the synthetic workload of §4.2.2: two-column
// integer tables (a, b) whose values are drawn from a gaussian
// distribution, and the two parameterized queries
//
//	q1 = σ_{range ∧ a = ANY (σ_{range2}(R2))}(R1)   (equality ANY)
//	q2 = σ_{range ∧ a < ALL (σ_{range2}(R2))}(R1)   (inequality ALL)
//
// where range and range2 restrict attribute b of each table to a random
// window of fixed size. All four strategies apply to q1; Unn has no rule
// for q2's ALL sublink, exactly as in the paper.
package synth

import (
	"fmt"
	"math"

	"perm/internal/catalog"
	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

// Workload describes one synthetic experiment configuration.
type Workload struct {
	// InputSize is the row count of R1 (the selection input).
	InputSize int
	// SublinkSize is the row count of R2 (the sublink relation).
	SublinkSize int
	// Seed drives both data generation and parameter instances.
	Seed int64
}

// gaussian standard deviation, following the paper's "100 times the table
// size" (values spread with the table so selectivities stay stable across
// scales).
func stddev(n int) float64 { return 100 * float64(n) }

// windowWidth is the fixed size of the random range restriction on b.
func windowWidth(n int) int64 { return int64(stddev(n) / 2) }

type rng struct{ state uint64 }

func newRng(seed int64) *rng { return &rng{state: uint64(seed)*0x9E3779B9 + 0x2545F4914F6CDD1D} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// gaussian returns a normal deviate via Box–Muller.
func (r *rng) gaussian(mean, sd float64) float64 {
	u1 := r.float()
	for u1 == 0 {
		u1 = r.float()
	}
	u2 := r.float()
	return mean + sd*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// table generates one (a, b) relation of n gaussian-valued rows.
func table(n int, sd float64, r *rng) *rel.Relation {
	out := rel.New(schema.New("", "a", "b"))
	for i := 0; i < n; i++ {
		out.Add(rel.Tuple{
			types.NewInt(int64(r.gaussian(0, sd))),
			types.NewInt(int64(r.gaussian(0, sd))),
		}, 1)
	}
	return out
}

// Catalog materializes the workload: relation r1 with InputSize rows and r2
// with SublinkSize rows.
func (w Workload) Catalog() *catalog.Catalog {
	cat := catalog.New()
	r := newRng(w.Seed)
	cat.Register("r1", table(w.InputSize, stddev(w.InputSize), r))
	cat.Register("r2", table(w.SublinkSize, stddev(w.SublinkSize), r))
	return cat
}

// ranges draws the two random windows for one query instance.
func (w Workload) ranges(seed int64) (lo1, hi1, lo2, hi2 int64) {
	r := newRng(w.Seed*31 + seed)
	w1 := windowWidth(w.InputSize)
	w2 := windowWidth(w.SublinkSize)
	c1 := int64(r.gaussian(0, stddev(w.InputSize)))
	c2 := int64(r.gaussian(0, stddev(w.SublinkSize)))
	return c1 - w1/2, c1 + w1/2, c2 - w2/2, c2 + w2/2
}

// Q1 renders one instance of the equality-ANY query.
func (w Workload) Q1(seed int64) string {
	lo1, hi1, lo2, hi2 := w.ranges(seed)
	return fmt.Sprintf(`SELECT * FROM r1 WHERE r1.b >= %d AND r1.b <= %d AND r1.a = ANY (SELECT r2.a FROM r2 WHERE r2.b >= %d AND r2.b <= %d)`,
		lo1, hi1, lo2, hi2)
}

// Q2 renders one instance of the inequality-ALL query.
func (w Workload) Q2(seed int64) string {
	lo1, hi1, lo2, hi2 := w.ranges(seed)
	return fmt.Sprintf(`SELECT * FROM r1 WHERE r1.b >= %d AND r1.b <= %d AND r1.a < ALL (SELECT r2.a FROM r2 WHERE r2.b >= %d AND r2.b <= %d)`,
		lo1, hi1, lo2, hi2)
}

// Package synth generates the synthetic workload of §4.2.2: two-column
// integer tables (a, b) whose values are drawn from a gaussian
// distribution, and the two parameterized queries
//
//	q1 = σ_{range ∧ a = ANY (σ_{range2}(R2))}(R1)   (equality ANY)
//	q2 = σ_{range ∧ a < ALL (σ_{range2}(R2))}(R1)   (inequality ALL)
//
// where range and range2 restrict attribute b of each table to a random
// window of fixed size. All four strategies apply to q1; Unn has no rule
// for q2's ALL sublink, exactly as in the paper.
package synth

import (
	"fmt"
	"math"

	"perm/internal/catalog"
	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

// Workload describes one synthetic experiment configuration.
type Workload struct {
	// InputSize is the row count of R1 (the selection input).
	InputSize int
	// SublinkSize is the row count of R2 (the sublink relation).
	SublinkSize int
	// Seed drives both data generation and parameter instances.
	Seed int64
	// Domain, when positive, draws attribute b of both relations uniformly
	// from [0, Domain) instead of the gaussian. A bounded domain makes the
	// correlated query Q3 repeat parameter bindings across outer tuples —
	// the workload the executor's per-binding sublink memo targets.
	Domain int
}

// gaussian standard deviation, following the paper's "100 times the table
// size" (values spread with the table so selectivities stay stable across
// scales).
func stddev(n int) float64 { return 100 * float64(n) }

// windowWidth is the fixed size of the random range restriction on b.
func windowWidth(n int) int64 { return int64(stddev(n) / 2) }

type rng struct{ state uint64 }

func newRng(seed int64) *rng { return &rng{state: uint64(seed)*0x9E3779B9 + 0x2545F4914F6CDD1D} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// gaussian returns a normal deviate via Box–Muller.
func (r *rng) gaussian(mean, sd float64) float64 {
	u1 := r.float()
	for u1 == 0 {
		u1 = r.float()
	}
	u2 := r.float()
	return mean + sd*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// table generates one (a, b) relation of n rows: a is always gaussian; b is
// gaussian, or uniform over [0, domain) when domain is positive.
func table(n int, sd float64, domain int, r *rng) *rel.Relation {
	out := rel.New(schema.New("", "a", "b"))
	for i := 0; i < n; i++ {
		b := int64(r.gaussian(0, sd))
		if domain > 0 {
			b = int64(r.next() % uint64(domain))
		}
		out.Add(rel.Tuple{
			types.NewInt(int64(r.gaussian(0, sd))),
			types.NewInt(b),
		}, 1)
	}
	return out
}

// Catalog materializes the workload: relation r1 with InputSize rows and r2
// with SublinkSize rows.
func (w Workload) Catalog() *catalog.Catalog {
	cat := catalog.New()
	r := newRng(w.Seed)
	cat.Register("r1", table(w.InputSize, stddev(w.InputSize), w.Domain, r))
	cat.Register("r2", table(w.SublinkSize, stddev(w.SublinkSize), w.Domain, r))
	return cat
}

// ranges draws the two random windows for one query instance. With a
// bounded Domain the windows select half the domain so query selectivity
// stays comparable to the gaussian configuration.
func (w Workload) ranges(seed int64) (lo1, hi1, lo2, hi2 int64) {
	r := newRng(w.Seed*31 + seed)
	if w.Domain > 0 {
		half := int64(w.Domain) / 2
		lo1 = int64(r.next() % uint64(half+1))
		lo2 = int64(r.next() % uint64(half+1))
		return lo1, lo1 + half, lo2, lo2 + half
	}
	w1 := windowWidth(w.InputSize)
	w2 := windowWidth(w.SublinkSize)
	c1 := int64(r.gaussian(0, stddev(w.InputSize)))
	c2 := int64(r.gaussian(0, stddev(w.SublinkSize)))
	return c1 - w1/2, c1 + w1/2, c2 - w2/2, c2 + w2/2
}

// Q1 renders one instance of the equality-ANY query.
func (w Workload) Q1(seed int64) string {
	lo1, hi1, lo2, hi2 := w.ranges(seed)
	return fmt.Sprintf(`SELECT * FROM r1 WHERE r1.b >= %d AND r1.b <= %d AND r1.a = ANY (SELECT r2.a FROM r2 WHERE r2.b >= %d AND r2.b <= %d)`,
		lo1, hi1, lo2, hi2)
}

// Q2 renders one instance of the inequality-ALL query.
func (w Workload) Q2(seed int64) string {
	lo1, hi1, lo2, hi2 := w.ranges(seed)
	return fmt.Sprintf(`SELECT * FROM r1 WHERE r1.b >= %d AND r1.b <= %d AND r1.a < ALL (SELECT r2.a FROM r2 WHERE r2.b >= %d AND r2.b <= %d)`,
		lo1, hi1, lo2, hi2)
}

// Q3 renders one instance of the correlated-ANY query
//
//	q3 = σ_{range ∧ a > ANY (σ_{b = outer.b}(R2))}(R1)
//
// Its sublink is correlated on r1.b — only the Gen strategy rewrites it,
// and the baseline executor must re-evaluate the sublink per outer tuple
// unless the per-binding memo is enabled. This is the workload behind the
// executor-mode comparison (not a query of the paper).
func (w Workload) Q3(seed int64) string {
	lo1, hi1, _, _ := w.ranges(seed)
	return fmt.Sprintf(`SELECT * FROM r1 WHERE r1.b >= %d AND r1.b <= %d AND r1.a > ANY (SELECT r2.a FROM r2 WHERE r2.b = r1.b)`,
		lo1, hi1)
}

// Q4 renders one instance of the correlated-EXISTS query
//
//	q4 = σ_{range ∧ EXISTS(σ_{b = outer.b}(R2))}(R1)
//
// One matching inner row decides each probe, so the query is dominated by
// exactly the per-binding sublink cost that early termination removes: the
// streaming executor stops each probe at its first witness, the
// materializing executor scans the whole sublink relation per binding and
// builds the full per-binding result bag. This is the workload behind the
// streaming-vs-materializing comparison (not a query of the paper). Its
// equality correlation also makes it the canonical input for the UnnX
// EXISTS decorrelation (rule X5).
func (w Workload) Q4(seed int64) string {
	lo1, hi1, _, _ := w.ranges(seed)
	return fmt.Sprintf(`SELECT * FROM r1 WHERE r1.b >= %d AND r1.b <= %d AND EXISTS (SELECT r2.a FROM r2 WHERE r2.b = r1.b)`,
		lo1, hi1)
}

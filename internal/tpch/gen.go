// Package tpch is a deterministic, in-process TPC-H-style workload
// generator and the nine sublink query templates of the paper's Figure 6
// experiment (§4.2.1).
//
// Substitutions relative to the official benchmark (documented in
// DESIGN.md): dates are integers counting days from 1992-01-01; text
// columns draw from small value pools; the "Customer Complaints" LIKE
// predicate of Q16 becomes an equality on a comment pool value; Q22's
// phone-prefix substring becomes integer division on a numeric phone; and
// the scale factor multiplies micro row counts sized for an in-memory
// interpreter rather than dbgen's millions. Schema names, key
// relationships, distributions and — critically — the sublink structure of
// every query are preserved.
package tpch

import (
	"fmt"
	"math"

	"perm/internal/catalog"
	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

// Config controls generation.
type Config struct {
	// SF is the scale factor; 1.0 produces the micro-base row counts below.
	SF float64
	// Seed makes generation deterministic; the same Config always yields
	// byte-identical relations.
	Seed int64
}

// Micro-base row counts at SF = 1. The official benchmark's ratios between
// tables are kept approximately (partsupp 2/part, orders 3/customer,
// lineitem 1–6/order); absolute counts are scaled down for the
// tree-walking executor.
const (
	baseSupplier = 20
	basePart     = 50
	baseCustomer = 38
	baseNation   = 25
	baseRegion   = 5
)

// rng is a splitmix64 generator: tiny, deterministic, stdlib-free.
type rng struct{ state uint64 }

func newRng(seed int64) *rng { return &rng{state: uint64(seed)*2654435769 + 0x9E3779B97F4A7C15} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangeInt returns a value in [lo, hi].
func (r *rng) rangeInt(lo, hi int) int64 { return int64(lo + r.intn(hi-lo+1)) }

// float returns a value in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// money returns a price-like float with two decimals in [lo, hi].
func (r *rng) money(lo, hi float64) float64 {
	v := lo + r.float()*(hi-lo)
	return math.Round(v*100) / 100
}

func (r *rng) choice(items []string) string { return items[r.intn(len(items))] }

var (
	regionNames     = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	segments        = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities      = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	containers      = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PACK", "WRAP JAR"}
	partTypes       = []string{"ECONOMY ANODIZED STEEL", "STANDARD POLISHED COPPER", "PROMO BURNISHED NICKEL", "MEDIUM PLATED BRASS", "SMALL BRUSHED TIN", "LARGE POLISHED STEEL"}
	shipModes       = []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"}
	shipInstructs   = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	supplierComment = []string{"none", "standard", "complaints", "prompt"}
)

// ComplaintsComment is the supplier comment value standing in for TPC-H
// Q16's "%Customer%Complaints%" LIKE pattern.
const ComplaintsComment = "complaints"

// Counts reports the row counts for a scale factor.
type Counts struct {
	Region, Nation, Supplier, Part, PartSupp, Customer, Orders, Lineitem int
}

func scaled(base int, sf float64, min int) int {
	n := int(math.Round(float64(base) * sf))
	if n < min {
		n = min
	}
	return n
}

// Generate builds a catalog with the eight TPC-H relations at the given
// scale. Lineitem's count varies slightly with the seed (1–6 lines per
// order, as in the official generator).
func Generate(cfg Config) (*catalog.Catalog, Counts) {
	r := newRng(cfg.Seed)
	cat := catalog.New()
	var cnt Counts
	cnt.Region = baseRegion
	// Nation and region are fixed-size in official TPC-H; nation scales
	// down below SF 1 to keep the Gen strategy's CrossBase tractable on the
	// smallest databases (documented substitution).
	cnt.Nation = scaled(baseNation, math.Min(cfg.SF, 1), 4)
	// At least four suppliers so the query templates' nation parameters
	// (NATION00–NATION03) always have stock to report on.
	cnt.Supplier = scaled(baseSupplier, cfg.SF, 4)
	cnt.Part = scaled(basePart, cfg.SF, 3)
	cnt.PartSupp = cnt.Part * 2
	cnt.Customer = scaled(baseCustomer, cfg.SF, 2)
	cnt.Orders = cnt.Customer * 3

	region := rel.New(schema.New("", "r_regionkey", "r_name", "r_comment"))
	for k := 0; k < cnt.Region; k++ {
		region.Add(rel.Tuple{
			types.NewInt(int64(k)),
			types.NewString(regionNames[k%len(regionNames)]),
			types.NewString("region comment"),
		}, 1)
	}
	cat.Register("region", region)

	nation := rel.New(schema.New("", "n_nationkey", "n_name", "n_regionkey", "n_comment"))
	for k := 0; k < cnt.Nation; k++ {
		nation.Add(rel.Tuple{
			types.NewInt(int64(k)),
			types.NewString(fmt.Sprintf("NATION%02d", k)),
			types.NewInt(int64(k % cnt.Region)),
			types.NewString("nation comment"),
		}, 1)
	}
	cat.Register("nation", nation)

	supplier := rel.New(schema.New("", "s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment"))
	for k := 1; k <= cnt.Supplier; k++ {
		supplier.Add(rel.Tuple{
			types.NewInt(int64(k)),
			types.NewString(fmt.Sprintf("Supplier#%09d", k)),
			types.NewString(fmt.Sprintf("address %d", k)),
			// Round-robin keeps every nation supplied even at micro scale
			// (dbgen's uniform distribution has the same effect at SF 1).
			types.NewInt(int64((k - 1) % cnt.Nation)),
			types.NewInt(r.rangeInt(1000000, 9999999)),
			types.NewFloat(r.money(-999.99, 9999.99)),
			types.NewString(r.choice(supplierComment)),
		}, 1)
	}
	cat.Register("supplier", supplier)

	part := rel.New(schema.New("", "p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size", "p_container", "p_retailprice", "p_comment"))
	for k := 1; k <= cnt.Part; k++ {
		mfgr := r.rangeInt(1, 5)
		part.Add(rel.Tuple{
			types.NewInt(int64(k)),
			types.NewString(fmt.Sprintf("part %d", k)),
			types.NewString(fmt.Sprintf("MFGR#%d", mfgr)),
			types.NewString(fmt.Sprintf("Brand#%d%d", mfgr, r.rangeInt(1, 5))),
			types.NewString(r.choice(partTypes)),
			types.NewInt(r.rangeInt(1, 50)),
			types.NewString(r.choice(containers)),
			types.NewFloat(r.money(900, 2000)),
			types.NewString("part comment"),
		}, 1)
	}
	cat.Register("part", part)

	// partsupp: two suppliers per part, official-style striding so supplier
	// keys spread over parts.
	partsupp := rel.New(schema.New("", "ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost", "ps_comment"))
	suppOf := make(map[int64][]int64, cnt.Part)
	for k := 1; k <= cnt.Part; k++ {
		s1 := int64((k % cnt.Supplier) + 1)
		s2 := int64(((k + cnt.Supplier/2) % cnt.Supplier) + 1)
		if s2 == s1 {
			s2 = s1%int64(cnt.Supplier) + 1
		}
		suppOf[int64(k)] = []int64{s1, s2}
		for _, s := range suppOf[int64(k)] {
			partsupp.Add(rel.Tuple{
				types.NewInt(int64(k)),
				types.NewInt(s),
				types.NewInt(r.rangeInt(1, 9999)),
				types.NewFloat(r.money(1, 1000)),
				types.NewString("partsupp comment"),
			}, 1)
		}
	}
	cat.Register("partsupp", partsupp)

	customer := rel.New(schema.New("", "c_custkey", "c_name", "c_address", "c_nationkey", "c_phone", "c_acctbal", "c_mktsegment", "c_comment"))
	for k := 1; k <= cnt.Customer; k++ {
		nk := r.rangeInt(0, cnt.Nation-1)
		// Phone = country code (nation + 10) * 100000 + local digits, so
		// Q22's prefix extraction is integer division by 100000.
		phone := (nk+10)*100000 + r.rangeInt(10000, 99999)
		customer.Add(rel.Tuple{
			types.NewInt(int64(k)),
			types.NewString(fmt.Sprintf("Customer#%09d", k)),
			types.NewString(fmt.Sprintf("address %d", k)),
			types.NewInt(nk),
			types.NewInt(phone),
			types.NewFloat(r.money(-999.99, 9999.99)),
			types.NewString(r.choice(segments)),
			types.NewString("customer comment"),
		}, 1)
	}
	cat.Register("customer", customer)

	// Dates are day numbers from 1992-01-01 (day 0) to ~1998-12-31
	// (day 2555).
	const maxDate = 2555
	orders := rel.New(schema.New("", "o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice", "o_orderdate", "o_orderpriority", "o_clerk", "o_shippriority", "o_comment"))
	lineitem := rel.New(schema.New("", "l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity", "l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate", "l_receiptdate", "l_shipinstruct", "l_shipmode", "l_comment"))
	orderKey := int64(0)
	for ck := 1; ck <= cnt.Customer; ck++ {
		for o := 0; o < 3; o++ {
			orderKey++
			cnt.Orders = int(orderKey)
			odate := r.rangeInt(0, maxDate-151)
			status := "O"
			if odate < maxDate/2 {
				status = "F"
			} else if r.intn(10) == 0 {
				status = "P"
			}
			orders.Add(rel.Tuple{
				types.NewInt(orderKey),
				types.NewInt(int64(ck)),
				types.NewString(status),
				types.NewFloat(r.money(1000, 400000)),
				types.NewInt(odate),
				types.NewString(r.choice(priorities)),
				types.NewString(fmt.Sprintf("Clerk#%05d", r.rangeInt(1, 99))),
				types.NewInt(0),
				types.NewString("order comment"),
			}, 1)
			lines := 1 + r.intn(6)
			for ln := 1; ln <= lines; ln++ {
				cnt.Lineitem++
				pk := r.rangeInt(1, cnt.Part)
				sk := suppOf[pk][r.intn(2)]
				qty := r.rangeInt(1, 50)
				ship := odate + r.rangeInt(1, 121)
				commit := odate + r.rangeInt(30, 90)
				receipt := ship + r.rangeInt(1, 30)
				lineitem.Add(rel.Tuple{
					types.NewInt(orderKey),
					types.NewInt(pk),
					types.NewInt(sk),
					types.NewInt(int64(ln)),
					types.NewInt(qty),
					types.NewFloat(r.money(900, 104000)),
					types.NewFloat(math.Round(r.float()*10) / 100), // 0.00–0.10
					types.NewFloat(math.Round(r.float()*8) / 100),  // 0.00–0.08
					types.NewString(r.choice([]string{"R", "A", "N"})),
					types.NewString(r.choice([]string{"O", "F"})),
					types.NewInt(ship),
					types.NewInt(commit),
					types.NewInt(receipt),
					types.NewString(r.choice(shipInstructs)),
					types.NewString(r.choice(shipModes)),
					types.NewString("lineitem comment"),
				}, 1)
			}
		}
	}
	cat.Register("orders", orders)
	cat.Register("lineitem", lineitem)
	return cat, cnt
}

package tpch

import (
	"errors"
	"testing"

	"perm/internal/eval"
	"perm/internal/opt"
	"perm/internal/rel"
	"perm/internal/rewrite"
	"perm/internal/sql"
)

func TestGenerateDeterministic(t *testing.T) {
	a, ca := Generate(Config{SF: 0.2, Seed: 42})
	b, cb := Generate(Config{SF: 0.2, Seed: 42})
	if ca != cb {
		t.Fatalf("counts differ: %+v vs %+v", ca, cb)
	}
	for _, name := range a.Names() {
		ra, _ := a.Relation(name)
		rb, err := b.Relation(name)
		if err != nil {
			t.Fatalf("missing %s in second run", name)
		}
		if !ra.Equal(rb) {
			t.Errorf("relation %s differs between runs", name)
		}
	}
	c, _ := Generate(Config{SF: 0.2, Seed: 43})
	li1, _ := a.Relation("lineitem")
	li2, _ := c.Relation("lineitem")
	if li1.Equal(li2) {
		t.Error("different seeds should produce different lineitem data")
	}
}

func TestGenerateScaling(t *testing.T) {
	_, small := Generate(Config{SF: 0.2, Seed: 1})
	_, big := Generate(Config{SF: 2, Seed: 1})
	if big.Part <= small.Part || big.Lineitem <= small.Lineitem {
		t.Errorf("scaling broken: %+v vs %+v", small, big)
	}
	if small.PartSupp != 2*small.Part {
		t.Errorf("partsupp should be 2 per part: %+v", small)
	}
	if small.Orders != 3*small.Customer {
		t.Errorf("orders should be 3 per customer: %+v", small)
	}
}

func TestReferentialIntegrity(t *testing.T) {
	cat, _ := Generate(Config{SF: 0.3, Seed: 7})
	keys := func(relName, attr string) map[int64]bool {
		r, err := cat.Relation(relName)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := r.Schema.IndexOf("", attr)
		if err != nil {
			t.Fatal(err)
		}
		out := map[int64]bool{}
		_ = r.Each(func(tp rel.Tuple, n int) error {
			out[tp[idx].Int()] = true
			return nil
		})
		return out
	}
	check := func(child, fk, parent, pk string) {
		t.Helper()
		parents := keys(parent, pk)
		for k := range keys(child, fk) {
			if !parents[k] {
				t.Errorf("%s.%s = %d has no parent in %s.%s", child, fk, k, parent, pk)
			}
		}
	}
	check("nation", "n_regionkey", "region", "r_regionkey")
	check("supplier", "s_nationkey", "nation", "n_nationkey")
	check("customer", "c_nationkey", "nation", "n_nationkey")
	check("partsupp", "ps_partkey", "part", "p_partkey")
	check("partsupp", "ps_suppkey", "supplier", "s_suppkey")
	check("orders", "o_custkey", "customer", "c_custkey")
	check("lineitem", "l_orderkey", "orders", "o_orderkey")
	check("lineitem", "l_partkey", "part", "p_partkey")
	check("lineitem", "l_suppkey", "supplier", "s_suppkey")
}

func TestNineSublinkQueries(t *testing.T) {
	qs := SublinkQueries()
	if len(qs) != 9 {
		t.Fatalf("the paper uses 9 sublink queries, have %d", len(qs))
	}
	uncorrelated := 0
	for _, q := range qs {
		if !q.Correlated {
			uncorrelated++
		}
	}
	if uncorrelated != 3 {
		t.Fatalf("the paper identifies 3 uncorrelated queries (11, 15, 16), have %d", uncorrelated)
	}
	for _, n := range []int{11, 15, 16} {
		q, err := QueryByNum(n)
		if err != nil {
			t.Fatal(err)
		}
		if q.Correlated {
			t.Errorf("Q%d should be uncorrelated", n)
		}
	}
	if _, err := QueryByNum(3); err == nil {
		t.Error("Q3 has no sublinks and should not resolve")
	}
}

func TestInstanceDeterminism(t *testing.T) {
	for _, q := range SublinkQueries() {
		if q.Instance(7) != q.Instance(7) {
			t.Errorf("Q%d instance not deterministic", q.Num)
		}
		// Some templates have small parameter spaces (Q21 draws one of four
		// nations), so distinctness is checked across a seed range.
		distinct := map[string]bool{}
		for seed := int64(0); seed < 10; seed++ {
			distinct[q.Instance(seed)] = true
		}
		if len(distinct) < 2 {
			t.Errorf("Q%d instances should vary with the seed", q.Num)
		}
	}
}

// TestQueriesCompileAndRun compiles every template instance, checks the
// correlation analysis agrees with the paper's classification, and runs
// the plain query on a small database.
func TestQueriesCompileAndRun(t *testing.T) {
	cat, _ := Generate(Config{SF: 0.2, Seed: 11})
	for _, q := range SublinkQueries() {
		for seed := int64(0); seed < 3; seed++ {
			text := q.Instance(seed)
			tr, err := sql.Compile(cat, text)
			if err != nil {
				t.Fatalf("Q%d seed %d: %v\n%s", q.Num, seed, err, text)
			}
			plan := opt.Optimize(tr.Plan)
			if _, err := eval.New(cat).Eval(plan); err != nil {
				t.Fatalf("Q%d seed %d eval: %v", q.Num, seed, err)
			}
		}
	}
}

// TestStrategyApplicability mirrors §4.2.1: Gen applies to all nine
// queries; Left and Move apply exactly to the three uncorrelated ones; Unn
// applies to none of them.
func TestStrategyApplicability(t *testing.T) {
	cat, _ := Generate(Config{SF: 0.2, Seed: 11})
	for _, q := range SublinkQueries() {
		text := q.Instance(1)
		tr, err := sql.Compile(cat, text)
		if err != nil {
			t.Fatalf("Q%d: %v", q.Num, err)
		}
		// ORDER BY survives rewriting; LIMIT would not, and none of the
		// templates uses it.
		if _, err := rewrite.Rewrite(tr.Plan, rewrite.Gen); err != nil {
			t.Errorf("Gen must apply to Q%d: %v", q.Num, err)
		}
		for _, strat := range []rewrite.Strategy{rewrite.Left, rewrite.Move} {
			_, err := rewrite.Rewrite(tr.Plan, strat)
			if q.Correlated && !errors.Is(err, rewrite.ErrNotApplicable) {
				t.Errorf("%v on correlated Q%d: err = %v, want ErrNotApplicable", strat, q.Num, err)
			}
			if !q.Correlated && err != nil {
				t.Errorf("%v must apply to uncorrelated Q%d: %v", strat, q.Num, err)
			}
		}
		if _, err := rewrite.Rewrite(tr.Plan, rewrite.Unn); !errors.Is(err, rewrite.ErrNotApplicable) {
			t.Errorf("Unn should not apply to Q%d (the paper found no TPC-H query matches Unn), got %v", q.Num, err)
		}
	}
}

// TestProvenancePreservesResults runs each query's cheapest applicable
// strategy on a small database and verifies the rewritten query's original
// attributes reproduce the plain result (Theorem 4 on real workloads).
func TestProvenancePreservesResults(t *testing.T) {
	cat, _ := Generate(Config{SF: 0.15, Seed: 5})
	ev := eval.New(cat)
	for _, q := range SublinkQueries() {
		text := q.Instance(2)
		tr, err := sql.Compile(cat, text)
		if err != nil {
			t.Fatalf("Q%d: %v", q.Num, err)
		}
		plain, err := ev.Eval(opt.Optimize(tr.Plan))
		if err != nil {
			t.Fatalf("Q%d plain: %v", q.Num, err)
		}
		strat := rewrite.Move
		if q.Correlated {
			strat = rewrite.Gen
		}
		if q.Correlated && (q.Num == 2 || q.Num == 20 || q.Num == 21) {
			// Gen over multi-relation CrossBases is the paper's
			// several-hours case; covered by the benchmark harness with
			// timeouts instead of unit tests.
			continue
		}
		res, err := rewrite.Rewrite(tr.Plan, strat)
		if err != nil {
			t.Fatalf("Q%d rewrite: %v", q.Num, err)
		}
		out, err := ev.Eval(opt.Optimize(res.Plan))
		if err != nil {
			t.Fatalf("Q%d provenance eval: %v", q.Num, err)
		}
		width := res.Original.Len()
		proj := rel.New(res.Original)
		_ = out.Each(func(tp rel.Tuple, n int) error {
			proj.Add(tp[:width].Clone(), n)
			return nil
		})
		if !proj.EqualSet(plain.WithSchema(proj.Schema)) {
			t.Errorf("Q%d: provenance query does not preserve the result\nplain: %d tuples\nprov:  %d tuples",
				q.Num, plain.Card(), proj.Card())
		}
	}
}

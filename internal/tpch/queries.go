package tpch

import (
	"fmt"
	"sort"
)

// Query is one TPC-H sublink query template. The paper restricts the
// Figure 6 experiment to the nine TPC-H queries that contain sublinks, of
// which three (Q11, Q15, Q16) contain only uncorrelated sublinks and hence
// admit the Left and Move strategies.
type Query struct {
	// Num is the TPC-H query number.
	Num int
	// Name is a short description of the sublink pattern.
	Name string
	// Correlated reports whether the query contains correlated sublinks
	// (only the Gen strategy applies then).
	Correlated bool
	// instance renders the template with seeded parameters.
	instance func(r *rng) string
}

// SublinkQueries returns the nine sublink query templates in query-number
// order.
func SublinkQueries() []Query {
	qs := []Query{q2, q4, q11, q15, q16, q17, q20, q21, q22}
	sort.Slice(qs, func(i, j int) bool { return qs[i].Num < qs[j].Num })
	return qs
}

// QueryByNum returns one template.
func QueryByNum(num int) (Query, error) {
	for _, q := range SublinkQueries() {
		if q.Num == num {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("tpch: no sublink query Q%d (have 2,4,11,15,16,17,20,21,22)", num)
}

// Instance renders the template with parameters drawn from seed, mirroring
// the paper's use of the TPC-H query generator to produce 100 random
// instances per template.
func (q Query) Instance(seed int64) string {
	return q.instance(newRng(seed*7919 + int64(q.Num)))
}

// dateParam returns a plausible order/ship date window start.
func dateParam(r *rng) int64 { return r.rangeInt(0, 2000) }

var q2 = Query{
	Num: 2, Name: "min-cost supplier (correlated scalar)", Correlated: true,
	instance: func(r *rng) string {
		size := r.rangeInt(1, 50)
		region := r.rangeInt(0, 4)
		return fmt.Sprintf(`
SELECT s_acctbal, s_name, n_name, p_partkey, s_address
FROM part, supplier, partsupp, nation, region
WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
  AND p_size = %d
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_regionkey = %d
  AND ps_supplycost = (
    SELECT min(ps2.ps_supplycost)
    FROM partsupp AS ps2, supplier AS s2, nation AS n2, region AS r2
    WHERE p_partkey = ps2.ps_partkey AND s2.s_suppkey = ps2.ps_suppkey
      AND s2.s_nationkey = n2.n_nationkey AND n2.n_regionkey = r2.r_regionkey
      AND r2.r_regionkey = %d)
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey`, size, region, region)
	},
}

var q4 = Query{
	Num: 4, Name: "order priority checking (correlated EXISTS)", Correlated: true,
	instance: func(r *rng) string {
		d := dateParam(r)
		return fmt.Sprintf(`
SELECT o_orderpriority, count(*) AS order_count
FROM orders
WHERE o_orderdate >= %d AND o_orderdate < %d
  AND EXISTS (
    SELECT * FROM lineitem
    WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)
GROUP BY o_orderpriority
ORDER BY o_orderpriority`, d, d+90)
	},
}

// q11's official threshold is sum(…) * fraction with fraction = 0.0001/SF;
// a fixed fraction degenerates at micro scales, so the reproduction uses a
// scale-invariant multiple of the average stock value — same sublink
// structure (uncorrelated scalar in HAVING), stable selectivity.
var q11 = Query{
	Num: 11, Name: "important stock (uncorrelated scalar in HAVING)", Correlated: false,
	instance: func(r *rng) string {
		nation := r.rangeInt(0, 3)
		return fmt.Sprintf(`
SELECT ps_partkey, sum(ps_supplycost * ps_availqty) AS value
FROM partsupp, supplier, nation
WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = 'NATION%02d'
GROUP BY ps_partkey
HAVING sum(ps_supplycost * ps_availqty) > (
  SELECT avg(ps2.ps_supplycost * ps2.ps_availqty) * 2.5
  FROM partsupp AS ps2, supplier AS s2, nation AS n2
  WHERE ps2.ps_suppkey = s2.s_suppkey AND s2.s_nationkey = n2.n_nationkey
    AND n2.n_name = 'NATION%02d')
ORDER BY value DESC`, nation, nation)
	},
}

var q15 = Query{
	Num: 15, Name: "top supplier (uncorrelated scalar max over view)", Correlated: false,
	instance: func(r *rng) string {
		d := dateParam(r)
		rev := fmt.Sprintf(`SELECT l_suppkey AS supplier_no, sum(l_extendedprice * (1 - l_discount)) AS total_revenue
      FROM lineitem WHERE l_shipdate >= %d AND l_shipdate < %d GROUP BY l_suppkey`, d, d+90)
		return fmt.Sprintf(`
SELECT s_suppkey, s_name, s_address, s_phone, rev.total_revenue
FROM supplier, (%s) AS rev
WHERE s_suppkey = rev.supplier_no
  AND rev.total_revenue = (SELECT max(rev2.total_revenue) FROM (%s) AS rev2)
ORDER BY s_suppkey`, rev, rev)
	},
}

var q16 = Query{
	Num: 16, Name: "parts/supplier relationship (uncorrelated NOT IN)", Correlated: false,
	instance: func(r *rng) string {
		mfgr := r.rangeInt(1, 5)
		brand := fmt.Sprintf("Brand#%d%d", mfgr, r.rangeInt(1, 5))
		s1, s2, s3, s4 := r.rangeInt(1, 50), r.rangeInt(1, 50), r.rangeInt(1, 50), r.rangeInt(1, 50)
		return fmt.Sprintf(`
SELECT p_brand, p_type, p_size, count(DISTINCT ps_suppkey) AS supplier_cnt
FROM partsupp, part
WHERE p_partkey = ps_partkey
  AND p_brand <> '%s'
  AND p_size IN (%d, %d, %d, %d)
  AND ps_suppkey NOT IN (
    SELECT s_suppkey FROM supplier WHERE s_comment = '%s')
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size`, brand, s1, s2, s3, s4, ComplaintsComment)
	},
}

var q17 = Query{
	Num: 17, Name: "small-quantity-order revenue (correlated scalar avg)", Correlated: true,
	instance: func(r *rng) string {
		mfgr := r.rangeInt(1, 5)
		brand := fmt.Sprintf("Brand#%d%d", mfgr, r.rangeInt(1, 5))
		container := containers[r.intn(len(containers))]
		return fmt.Sprintf(`
SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND p_brand = '%s' AND p_container = '%s'
  AND l_quantity < (
    SELECT 0.5 * avg(l2.l_quantity) FROM lineitem AS l2
    WHERE l2.l_partkey = p_partkey)`, brand, container)
	},
}

var q20 = Query{
	Num: 20, Name: "potential part promotion (nested IN + correlated scalar)", Correlated: true,
	instance: func(r *rng) string {
		size := r.rangeInt(1, 50)
		d := dateParam(r)
		nation := r.rangeInt(0, 3)
		return fmt.Sprintf(`
SELECT s_name, s_address
FROM supplier, nation
WHERE s_suppkey IN (
    SELECT ps_suppkey FROM partsupp
    WHERE ps_partkey IN (SELECT p_partkey FROM part WHERE p_size = %d)
      AND ps_availqty > (
        SELECT 0.5 * sum(l_quantity) FROM lineitem
        WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey
          AND l_shipdate >= %d AND l_shipdate < %d))
  AND s_nationkey = n_nationkey AND n_name = 'NATION%02d'
ORDER BY s_name`, size, d, d+365, nation)
	},
}

var q21 = Query{
	Num: 21, Name: "suppliers who kept orders waiting (EXISTS + NOT EXISTS)", Correlated: true,
	instance: func(r *rng) string {
		nation := r.rangeInt(0, 3)
		return fmt.Sprintf(`
SELECT s_name, count(*) AS numwait
FROM supplier, lineitem AS l1, orders, nation
WHERE s_suppkey = l1.l_suppkey AND o_orderkey = l1.l_orderkey
  AND o_orderstatus = 'F'
  AND l1.l_receiptdate > l1.l_commitdate
  AND EXISTS (
    SELECT * FROM lineitem AS l2
    WHERE l2.l_orderkey = l1.l_orderkey AND l2.l_suppkey <> l1.l_suppkey)
  AND NOT EXISTS (
    SELECT * FROM lineitem AS l3
    WHERE l3.l_orderkey = l1.l_orderkey AND l3.l_suppkey <> l1.l_suppkey
      AND l3.l_receiptdate > l3.l_commitdate)
  AND s_nationkey = n_nationkey AND n_name = 'NATION%02d'
GROUP BY s_name
ORDER BY numwait DESC, s_name`, nation)
	},
}

var q22 = Query{
	Num: 22, Name: "global sales opportunity (NOT EXISTS + uncorrelated scalar)", Correlated: true,
	instance: func(r *rng) string {
		// Seven distinct country codes out of 10–33, in draw order so the
		// instance text is deterministic.
		seen := map[int64]bool{}
		var codes []int64
		for len(codes) < 7 {
			c := r.rangeInt(10, 33)
			if !seen[c] {
				seen[c] = true
				codes = append(codes, c)
			}
		}
		list := ""
		for _, c := range codes {
			if list != "" {
				list += ", "
			}
			list += fmt.Sprintf("%d", c)
		}
		return fmt.Sprintf(`
SELECT cntrycode, count(*) AS numcust, sum(acctbal) AS totacctbal
FROM (
  SELECT c_phone / 100000 AS cntrycode, c_acctbal AS acctbal
  FROM customer
  WHERE c_phone / 100000 IN (%s)
    AND c_acctbal > (
      SELECT avg(c2.c_acctbal) FROM customer AS c2
      WHERE c2.c_acctbal > 0.0 AND c2.c_phone / 100000 IN (%s))
    AND NOT EXISTS (SELECT * FROM orders WHERE o_custkey = c_custkey)
) AS custsale
GROUP BY cntrycode
ORDER BY cntrycode`, list, list)
	},
}

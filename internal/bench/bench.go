// Package bench is the experiment harness that regenerates the evaluation
// of Glavic & Alonso (EDBT 2009): Figure 6 (TPC-H, four database sizes,
// per-strategy query runtimes) and Figures 7–9 (synthetic workload, varying
// input/sublink relation sizes).
//
// The harness follows the paper's methodology: each (query, strategy) cell
// averages several random instances of the query template; cells whose
// execution exceeds the timeout are excluded (the paper used a six-hour
// cutoff; an in-process reproduction uses seconds), and strategy/query
// combinations the strategy cannot rewrite are reported "n/a".
package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/eval"
	"perm/internal/opt"
	"perm/internal/rel"
	"perm/internal/rewrite"
	"perm/internal/sql"
)

// Runner holds the harness configuration.
type Runner struct {
	// Timeout is the per-measurement cutoff (the paper's 6-hour rule,
	// scaled to an in-process engine).
	Timeout time.Duration
	// Instances is the number of random query instances averaged per cell
	// (the paper used 100).
	Instances int
	// Optimize applies the logical optimizer to every plan (on by default
	// through New; switch off for ablation runs).
	Optimize bool
	// MaxRows caps materialized rows per execution; exceeding it excludes
	// the cell exactly like a timeout (the Gen strategy's CrossBase can
	// exhaust memory long before any clock fires).
	MaxRows int
	// Parallelism is the executor worker count per query (0 or 1 runs
	// sequentially).
	Parallelism int
	// SublinkMemo enables the executor's per-binding memoization of
	// correlated sublink results. It is off by default: the paper's
	// measurements ran on PostgreSQL, whose SubPlans re-evaluate per outer
	// binding, and the figures reproduce that cost asymmetry. The
	// executor-modes table measures what the memo buys.
	SublinkMemo bool
	// Materialize switches the executor from the streaming pipeline to
	// operator-at-a-time full materialization. The paper figures (6-9) and
	// the modes table force it on regardless — they reproduce the paper's
	// engine, whose costs streaming early termination would remove; the
	// streaming table (permbench -fig stream) measures both sides.
	Materialize bool
	// Out receives the rendered tables.
	Out io.Writer
}

// DefaultMaxRows bounds one execution to roughly a gigabyte of tuples.
const DefaultMaxRows = 2_000_000

// New returns a Runner with the given defaults.
func New(out io.Writer, timeout time.Duration, instances int) *Runner {
	return &Runner{Timeout: timeout, Instances: instances, Optimize: true, MaxRows: DefaultMaxRows, Out: out}
}

// Measurement is one table cell.
type Measurement struct {
	// Mean is the average wall-clock time per instance.
	Mean time.Duration
	// Rows is the average output cardinality.
	Rows int
	// PeakRows is the average number of rows the executor materialized into
	// counted bags per instance — the memory high-water mark the streaming
	// pipeline exists to shrink.
	PeakRows int64
	// Excluded marks a timeout, NA an inapplicable strategy, Err a failure.
	Excluded bool
	NA       bool
	Err      error
}

// String renders the cell the way the tables print it.
func (m Measurement) String() string {
	switch {
	case m.NA:
		return "n/a"
	case m.Excluded:
		return ">timeout"
	case m.Err != nil:
		return "error"
	default:
		return fmtDuration(m.Mean)
	}
}

func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// Baseline is the pseudo-strategy for running the query without provenance.
const Baseline = "base"

// Measure runs the given SQL instances under one strategy name (Baseline,
// "Gen", "Left", "Move", "Unn") and returns the averaged cell. Canceling
// ctx excludes the remaining instances, like a timeout would.
func (r *Runner) Measure(ctx context.Context, cat *catalog.Catalog, instances []string, strategy string) Measurement {
	m, _ := r.measure(ctx, cat, instances, strategy)
	return m
}

// measure is Measure plus the last instance's materialized result, which
// the streaming table uses to assert executor-mode agreement.
func (r *Runner) measure(ctx context.Context, cat *catalog.Catalog, instances []string, strategy string) (Measurement, *rel.Relation) {
	var total time.Duration
	var rows int
	var peak int64
	var last *rel.Relation
	for _, text := range instances {
		tr, err := sql.Compile(cat, text)
		if err != nil {
			return Measurement{Err: err}, nil
		}
		plan := tr.Plan
		if strategy != Baseline {
			strat, err := rewrite.ParseStrategy(strategy)
			if err != nil {
				return Measurement{Err: err}, nil
			}
			res, err := rewrite.Rewrite(plan, strat)
			if errors.Is(err, rewrite.ErrNotApplicable) {
				return Measurement{NA: true}, nil
			}
			if err != nil {
				return Measurement{Err: err}, nil
			}
			plan = res.Plan
		}
		if r.Optimize {
			plan = opt.Optimize(plan)
		}
		remaining := r.Timeout - total
		if remaining <= 0 {
			return Measurement{Excluded: true}, nil
		}
		out, elapsed, evPeak, err := r.evalOnce(ctx, cat, plan, remaining)
		if err != nil {
			if errors.Is(err, eval.ErrCanceled) || errors.Is(err, eval.ErrBudget) {
				return Measurement{Excluded: true}, nil
			}
			return Measurement{Err: err}, nil
		}
		total += elapsed
		rows += out.Card()
		peak += evPeak
		last = out
	}
	n := len(instances)
	if n == 0 {
		return Measurement{Err: errors.New("bench: no instances")}, nil
	}
	return Measurement{Mean: total / time.Duration(n), Rows: rows / n, PeakRows: peak / int64(n)}, last
}

// evalOnce evaluates one plan under the remaining time budget; the timeout
// context is canceled before returning so its timer never outlives the run.
func (r *Runner) evalOnce(ctx context.Context, cat *catalog.Catalog, plan algebra.Op, budget time.Duration) (*rel.Relation, time.Duration, int64, error) {
	runCtx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	ev := eval.New(cat).WithContext(runCtx)
	ev.MaxRows = r.MaxRows
	ev.Parallelism = r.Parallelism
	ev.DisableSublinkMemo = !r.SublinkMemo
	ev.DisableStreaming = r.Materialize
	start := time.Now()
	out, err := ev.Eval(plan)
	return out, time.Since(start), ev.LastStats().PeakRows, err
}

// table renders one aligned text table.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
}

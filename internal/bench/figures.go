package bench

import (
	"context"
	"fmt"

	"perm/internal/catalog"
	"perm/internal/synth"
	"perm/internal/tpch"
)

// Fig6Config parameterizes the TPC-H experiment of Figure 6. The paper ran
// database sizes 1 MB, 10 MB, 100 MB and 1 GB; the reproduction expresses
// sizes as generator scale factors with the same ×10 spacing.
type Fig6Config struct {
	// Scales are the four database sizes (generator scale factors).
	Scales []float64
	// Queries restricts the run to specific TPC-H query numbers (all nine
	// sublink queries when empty).
	Queries []int
	// Seed drives data generation and instance parameters.
	Seed int64
}

// DefaultFig6 mirrors the paper's four ×10-spaced database sizes.
func DefaultFig6() Fig6Config {
	return Fig6Config{Scales: []float64{0.05, 0.5, 5, 50}, Seed: 1}
}

// Figure6 runs the TPC-H experiment: per database size, the average
// runtime of every sublink query under the baseline (no provenance), the
// Gen strategy, and — for the uncorrelated queries 11, 15 and 16 — the
// Left and Move strategies.
func (r *Runner) Figure6(ctx context.Context, cfg Fig6Config) {
	r = r.paperExecutor()
	queries := tpch.SublinkQueries()
	if len(cfg.Queries) > 0 {
		var filtered []tpch.Query
		for _, q := range queries {
			for _, num := range cfg.Queries {
				if q.Num == num {
					filtered = append(filtered, q)
				}
			}
		}
		queries = filtered
	}
	labels := []rune{'a', 'b', 'c', 'd'}
	for si, sf := range cfg.Scales {
		label := "?"
		if si < len(labels) {
			label = string(labels[si])
		}
		cat, counts := tpch.Generate(tpch.Config{SF: sf, Seed: cfg.Seed})
		fmt.Fprintf(r.Out, "\nFigure 6(%s): TPC-H scale %g (lineitem %d rows, orders %d, part %d)\n",
			label, sf, counts.Lineitem, counts.Orders, counts.Part)
		tb := &table{header: []string{"query", "baseline", "Gen", "Left", "Move"}}
		for _, q := range queries {
			instances := make([]string, r.Instances)
			for i := range instances {
				instances[i] = q.Instance(cfg.Seed + int64(i))
			}
			row := []string{fmt.Sprintf("Q%d", q.Num)}
			for _, strat := range []string{Baseline, "Gen", "Left", "Move"} {
				row = append(row, r.Measure(ctx, cat, instances, strat).String())
			}
			tb.add(row...)
		}
		tb.render(r.Out)
	}
}

// SynthConfig parameterizes the synthetic experiments of Figures 7–9.
type SynthConfig struct {
	// Sizes is the sweep axis (input sizes for Figure 7, sublink sizes for
	// Figure 8, both for Figure 9).
	Sizes []int
	// FixedInput and FixedSublink pin the non-swept relation size.
	FixedInput   int
	FixedSublink int
	// Seed drives data and parameters.
	Seed int64
}

// DefaultSynth scales the paper's 10…500000-row sweeps down to sizes an
// interpreting executor covers within the timeout; the shape of the curves
// (Unn ≪ Left ≈ Move ≪ Gen, Gen superlinear in the sublink size) is
// preserved. Pass explicit sizes for larger sweeps.
func DefaultSynth() SynthConfig {
	return SynthConfig{
		Sizes:        []int{10, 50, 100, 500, 1000},
		FixedInput:   500,
		FixedSublink: 100,
		Seed:         1,
	}
}

// synthStrategies: q1 admits all strategies, q2 all but Unn (§4.2.2). The
// UnnX column is this reproduction's extension (it covers q2's ALL
// sublink, which the paper left to future work).
var synthStrategies = []string{Baseline, "Gen", "Left", "Move", "Unn", "UnnX"}

// Figure7 varies the size of the selection's input relation with the
// sublink relation size fixed.
func (r *Runner) Figure7(ctx context.Context, cfg SynthConfig) {
	fmt.Fprintf(r.Out, "\nFigure 7: varying input relation size (sublink relation fixed at %d)\n", cfg.FixedSublink)
	r.synthSweep(ctx, cfg, func(size int) synth.Workload {
		return synth.Workload{InputSize: size, SublinkSize: cfg.FixedSublink, Seed: cfg.Seed}
	})
}

// Figure8 varies the sublink relation size with the input size fixed.
func (r *Runner) Figure8(ctx context.Context, cfg SynthConfig) {
	fmt.Fprintf(r.Out, "\nFigure 8: varying sublink relation size (input relation fixed at %d)\n", cfg.FixedInput)
	r.synthSweep(ctx, cfg, func(size int) synth.Workload {
		return synth.Workload{InputSize: cfg.FixedInput, SublinkSize: size, Seed: cfg.Seed}
	})
}

// Figure9 varies both relation sizes together.
func (r *Runner) Figure9(ctx context.Context, cfg SynthConfig) {
	fmt.Fprintf(r.Out, "\nFigure 9: varying both relation sizes\n")
	r.synthSweep(ctx, cfg, func(size int) synth.Workload {
		return synth.Workload{InputSize: size, SublinkSize: size, Seed: cfg.Seed}
	})
}

// ModesConfig parameterizes the executor-mode comparison. It is not a
// figure of the paper: it measures this reproduction's memoizing/parallel
// execution layer on the correlated-sublink workload (synth Q3) the paper
// identifies as the inherently expensive case.
type ModesConfig struct {
	// Sizes sweeps both relation sizes together.
	Sizes []int
	// Domain bounds the correlation attribute's value domain so parameter
	// bindings repeat across outer tuples.
	Domain int
	// Workers is the worker-pool size of the parallel modes.
	Workers int
	// Seed drives data and parameters.
	Seed int64
}

// DefaultModes uses a domain of 32 distinct correlation values and one
// worker per processor.
func DefaultModes(workers int) ModesConfig {
	return ModesConfig{Sizes: []int{100, 400, 1600}, Domain: 32, Workers: workers, Seed: 1}
}

// executorModes are the cells of the modes table: the strict re-evaluating
// executor (the paper's cost model), the per-binding sublink memo, the
// worker pool alone, and both combined.
var executorModes = []struct {
	name    string
	memo    bool
	workers bool
}{
	{"sequential", false, false},
	{"memo", true, false},
	{"parallel", false, true},
	{"memo+parallel", true, true},
}

// Modes runs the executor-mode comparison: the correlated query q3 under
// the baseline (no provenance) and the Gen strategy (the only strategy that
// rewrites correlated sublinks), across the four executor modes.
func (r *Runner) Modes(ctx context.Context, cfg ModesConfig) {
	r = r.paperExecutor()
	fmt.Fprintf(r.Out, "\nExecutor modes: correlated q3, domain %d, %d workers (not a paper figure)\n",
		cfg.Domain, cfg.Workers)
	for _, strat := range []string{Baseline, "Gen"} {
		fmt.Fprintf(r.Out, "\nq3 (a > ANY, correlated) · %s\n", strat)
		tb := &table{header: []string{"size"}}
		for _, m := range executorModes {
			tb.header = append(tb.header, m.name)
		}
		for _, size := range cfg.Sizes {
			w := synth.Workload{InputSize: size, SublinkSize: size, Domain: cfg.Domain, Seed: cfg.Seed}
			cat := w.Catalog()
			instances := make([]string, r.Instances)
			for i := range instances {
				instances[i] = w.Q3(int64(i))
			}
			row := []string{fmt.Sprintf("%d", size)}
			for _, m := range executorModes {
				rm := *r
				rm.SublinkMemo = m.memo
				rm.Parallelism = 1
				if m.workers {
					rm.Parallelism = cfg.Workers
				}
				row = append(row, rm.Measure(ctx, cat, instances, strat).String())
			}
			tb.add(row...)
		}
		tb.render(r.Out)
	}
}

// StreamConfig parameterizes the streaming-vs-materializing comparison. It
// is not a figure of the paper: it measures what the push-based streaming
// pipeline with early-terminating sublink probes buys over the
// operator-at-a-time materializing executor (both without the sublink memo,
// matching the paper's PostgreSQL SubPlan regime).
type StreamConfig struct {
	// Sizes sweeps both synthetic relation sizes together.
	Sizes []int
	// Domain bounds the correlation attribute's value domain.
	Domain int
	// Seed drives data and parameters.
	Seed int64
	// TPCHScale is the scale factor of the TPC-H rows of the table (0
	// disables them).
	TPCHScale float64
	// TPCHQueries are the TPC-H query numbers to include.
	TPCHQueries []int
}

// DefaultStream mirrors the modes sweep on the EXISTS-dominated correlated
// query and adds two EXISTS-heavy TPC-H queries at the smallest scale.
func DefaultStream() StreamConfig {
	return StreamConfig{
		Sizes:       []int{100, 400, 1600},
		Domain:      32,
		Seed:        1,
		TPCHScale:   0.05,
		TPCHQueries: []int{4, 22},
	}
}

// streamRow renders one comparison row: the materializing and streaming
// cells for the same workload, their speedup, the materialization ratio,
// and whether the two executors returned the identical result bag.
func (r *Runner) streamRow(ctx context.Context, tb *table, label string, cat *catalog.Catalog, instances []string, strategy string) {
	rm := *r
	rm.Materialize = true
	mat, matOut := rm.measure(ctx, cat, instances, strategy)
	rs := *r
	rs.Materialize = false
	str, strOut := rs.measure(ctx, cat, instances, strategy)
	speedup, ratio, agree := "-", "-", "-"
	if mat.Err == nil && str.Err == nil && !mat.Excluded && !str.Excluded && !mat.NA {
		if str.Mean > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(mat.Mean)/float64(str.Mean))
		}
		if str.PeakRows > 0 {
			ratio = fmt.Sprintf("%.0fx", float64(mat.PeakRows)/float64(str.PeakRows))
		}
		if matOut != nil && strOut != nil {
			if matOut.Equal(strOut.WithSchema(matOut.Schema)) {
				agree = "ok"
			} else {
				agree = "MISMATCH"
			}
		}
	}
	tb.add(label, mat.String(), fmtPeak(mat), str.String(), fmtPeak(str), speedup, ratio, agree)
}

// streamHeader names the comparison columns: wall times and materialized
// row counts per executor, the wall-clock speedup, the materialization
// ratio (matrows/streamrows), and the bag-equality check.
var streamHeader = []string{"workload", "mat", "matrows", "stream", "streamrows", "speedup", "rowsratio", "agree"}

func fmtPeak(m Measurement) string {
	if m.NA || m.Excluded || m.Err != nil {
		return "-"
	}
	return fmt.Sprintf("%d", m.PeakRows)
}

// FigureStream runs the streaming-vs-materializing comparison: the
// correlated EXISTS query q4 (one witness decides each probe — the case
// early termination targets) and the correlated q3 on the synthetic
// workload, plus EXISTS-heavy TPC-H queries, each under the baseline (no
// provenance) and the Gen strategy.
func (r *Runner) FigureStream(ctx context.Context, cfg StreamConfig) {
	for _, q := range []struct {
		name string
		mk   func(w synth.Workload, i int64) string
	}{
		{"q4 (correlated EXISTS)", func(w synth.Workload, i int64) string { return w.Q4(i) }},
		{"q3 (correlated > ANY)", func(w synth.Workload, i int64) string { return w.Q3(i) }},
	} {
		for _, strat := range []string{Baseline, "Gen"} {
			fmt.Fprintf(r.Out, "\nStreaming vs materializing: %s · %s (domain %d, not a paper figure)\n",
				q.name, strat, cfg.Domain)
			tb := &table{header: streamHeader}
			for _, size := range cfg.Sizes {
				w := synth.Workload{InputSize: size, SublinkSize: size, Domain: cfg.Domain, Seed: cfg.Seed}
				cat := w.Catalog()
				instances := make([]string, r.Instances)
				for i := range instances {
					instances[i] = q.mk(w, int64(i))
				}
				r.streamRow(ctx, tb, fmt.Sprintf("%d", size), cat, instances, strat)
			}
			tb.render(r.Out)
		}
	}
	if cfg.TPCHScale <= 0 || len(cfg.TPCHQueries) == 0 {
		return
	}
	cat, counts := tpch.Generate(tpch.Config{SF: cfg.TPCHScale, Seed: cfg.Seed})
	fmt.Fprintf(r.Out, "\nStreaming vs materializing: TPC-H scale %g (lineitem %d rows)\n",
		cfg.TPCHScale, counts.Lineitem)
	tb := &table{header: streamHeader}
	for _, q := range tpch.SublinkQueries() {
		keep := false
		for _, num := range cfg.TPCHQueries {
			if q.Num == num {
				keep = true
			}
		}
		if !keep {
			continue
		}
		instances := make([]string, r.Instances)
		for i := range instances {
			instances[i] = q.Instance(cfg.Seed + int64(i))
		}
		r.streamRow(ctx, tb, fmt.Sprintf("Q%d base", q.Num), cat, instances, Baseline)
		r.streamRow(ctx, tb, fmt.Sprintf("Q%d Gen", q.Num), cat, instances, "Gen")
	}
	tb.render(r.Out)
}

// paperExecutor pins a run to the materializing operator-at-a-time engine:
// the paper figures and the modes table reproduce the paper's PostgreSQL
// cost regime (full per-binding subplan evaluation, no early termination),
// which the streaming pipeline would silently remove. Streaming is measured
// where it is the subject — the stream table.
func (r *Runner) paperExecutor() *Runner {
	rm := *r
	rm.Materialize = true
	return &rm
}

func (r *Runner) synthSweep(ctx context.Context, cfg SynthConfig, mk func(size int) synth.Workload) {
	r = r.paperExecutor()
	for qi, queryName := range []string{"q1 (a = ANY)", "q2 (a < ALL)"} {
		fmt.Fprintf(r.Out, "\n%s\n", queryName)
		tb := &table{header: append([]string{"size"}, synthStrategies...)}
		for _, size := range cfg.Sizes {
			w := mk(size)
			cat := w.Catalog()
			instances := make([]string, r.Instances)
			for i := range instances {
				if qi == 0 {
					instances[i] = w.Q1(int64(i))
				} else {
					instances[i] = w.Q2(int64(i))
				}
			}
			row := []string{fmt.Sprintf("%d", size)}
			for _, strat := range synthStrategies {
				row = append(row, r.Measure(ctx, cat, instances, strat).String())
			}
			tb.add(row...)
		}
		tb.render(r.Out)
	}
}

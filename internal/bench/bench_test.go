package bench

import (
	"strings"
	"testing"
	"time"

	"perm/internal/synth"
	"perm/internal/tpch"
)

func TestMeasureBaselineAndStrategies(t *testing.T) {
	w := synth.Workload{InputSize: 100, SublinkSize: 30, Seed: 2}
	cat := w.Catalog()
	r := New(nil, 5*time.Second, 2)
	instances := []string{w.Q1(0), w.Q1(1)}
	base := r.Measure(t.Context(), cat, instances, Baseline)
	if base.Err != nil || base.NA || base.Excluded {
		t.Fatalf("baseline: %+v", base)
	}
	gen := r.Measure(t.Context(), cat, instances, "Gen")
	if gen.Err != nil || gen.NA {
		t.Fatalf("gen: %+v", gen)
	}
	unn := r.Measure(t.Context(), cat, instances, "Unn")
	if unn.Err != nil || unn.NA {
		t.Fatalf("unn: %+v", unn)
	}
	// q2 under Unn is not applicable.
	na := r.Measure(t.Context(), cat, []string{w.Q2(0)}, "Unn")
	if !na.NA {
		t.Fatalf("q2/Unn should be n/a: %+v", na)
	}
	if na.String() != "n/a" {
		t.Errorf("cell rendering = %q", na.String())
	}
}

func TestMeasureTimeoutExcludes(t *testing.T) {
	w := synth.Workload{InputSize: 2000, SublinkSize: 2000, Seed: 2}
	cat := w.Catalog()
	r := New(nil, time.Millisecond, 1)
	m := r.Measure(t.Context(), cat, []string{w.Q2(0)}, "Gen")
	if !m.Excluded {
		t.Fatalf("1ms budget should exclude Gen at size 2000: %+v", m)
	}
	if m.String() != ">timeout" {
		t.Errorf("cell rendering = %q", m.String())
	}
}

func TestMeasureBadSQL(t *testing.T) {
	w := synth.Workload{InputSize: 10, SublinkSize: 10, Seed: 2}
	r := New(nil, time.Second, 1)
	if m := r.Measure(t.Context(), w.Catalog(), []string{"SELEC nope"}, Baseline); m.Err == nil {
		t.Fatal("bad SQL should error")
	}
	if m := r.Measure(t.Context(), w.Catalog(), []string{"SELECT * FROM r1"}, "Bogus"); m.Err == nil {
		t.Fatal("bad strategy should error")
	}
}

func TestFigure6SmallRun(t *testing.T) {
	var sb strings.Builder
	r := New(&sb, 3*time.Second, 1)
	r.Figure6(t.Context(), Fig6Config{Scales: []float64{0.05}, Queries: []int{4, 11}, Seed: 1})
	out := sb.String()
	for _, want := range []string{"Figure 6(a)", "Q4", "Q11", "baseline", "Gen"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Q4 is correlated: Left column must be n/a.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Q4") && !strings.Contains(line, "n/a") {
			t.Errorf("Q4 row should contain n/a for Left/Move: %q", line)
		}
	}
}

func TestFigure7SmallRun(t *testing.T) {
	var sb strings.Builder
	r := New(&sb, 3*time.Second, 1)
	r.Figure7(t.Context(), SynthConfig{Sizes: []int{10, 50}, FixedSublink: 20, Seed: 1})
	out := sb.String()
	for _, want := range []string{"Figure 7", "q1", "q2", "Unn"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureStreamSmallRun(t *testing.T) {
	var sb strings.Builder
	r := New(&sb, 5*time.Second, 1)
	r.FigureStream(t.Context(), StreamConfig{Sizes: []int{40}, Domain: 8, Seed: 1})
	out := sb.String()
	for _, want := range []string{"Streaming vs materializing", "q4 (correlated EXISTS)", "matrows", "streamrows", "speedup", "agree"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("streaming and materializing executors disagree:\n%s", out)
	}
}

// TestStreamEarlyTerminationWins asserts the harness-level acceptance
// numbers: on the EXISTS-dominated correlated workload the streaming
// executor materializes at least 10x fewer rows and is not slower.
func TestStreamEarlyTerminationWins(t *testing.T) {
	w := synth.Workload{InputSize: 400, SublinkSize: 400, Domain: 32, Seed: 1}
	cat := w.Catalog()
	instances := []string{w.Q4(0), w.Q4(1)}
	r := New(nil, 30*time.Second, 2)
	r.Materialize = true
	mat, matOut := r.measure(t.Context(), cat, instances, Baseline)
	r.Materialize = false
	str, strOut := r.measure(t.Context(), cat, instances, Baseline)
	if mat.Err != nil || str.Err != nil || mat.Excluded || str.Excluded {
		t.Fatalf("mat %+v str %+v", mat, str)
	}
	if strOut == nil || matOut == nil || !matOut.Equal(strOut.WithSchema(matOut.Schema)) {
		t.Fatal("result bags differ between executors")
	}
	if str.PeakRows == 0 || mat.PeakRows < 10*str.PeakRows {
		t.Errorf("peak rows: materializing %d vs streaming %d — want >= 10x reduction", mat.PeakRows, str.PeakRows)
	}
	if str.Mean > mat.Mean {
		t.Errorf("streaming (%v) slower than materializing (%v)", str.Mean, mat.Mean)
	}
}

func TestDurationFormatting(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Microsecond:  "500µs",
		2500 * time.Microsecond: "2.5ms",
		1500 * time.Millisecond: "1.50s",
	}
	for d, want := range cases {
		if got := fmtDuration(d); got != want {
			t.Errorf("fmtDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

// TestShapePreserved is the harness-level sanity check of the paper's
// headline ordering on a moderate instance: Unn is the fastest provenance
// strategy for q1 and Gen the slowest.
func TestShapePreserved(t *testing.T) {
	w := synth.Workload{InputSize: 400, SublinkSize: 150, Seed: 3}
	cat := w.Catalog()
	r := New(nil, 30*time.Second, 3)
	instances := []string{w.Q1(0), w.Q1(1), w.Q1(2)}
	gen := r.Measure(t.Context(), cat, instances, "Gen")
	unn := r.Measure(t.Context(), cat, instances, "Unn")
	if gen.Err != nil || unn.Err != nil {
		t.Fatalf("gen %+v unn %+v", gen, unn)
	}
	if unn.Mean >= gen.Mean {
		t.Errorf("expected Unn (%v) faster than Gen (%v)", unn.Mean, gen.Mean)
	}
}

func TestTPCHFigure6UncorrelatedStrategies(t *testing.T) {
	cat, _ := tpch.Generate(tpch.Config{SF: 0.1, Seed: 1})
	r := New(nil, 10*time.Second, 1)
	q, err := tpch.QueryByNum(11)
	if err != nil {
		t.Fatal(err)
	}
	inst := []string{q.Instance(1)}
	left := r.Measure(t.Context(), cat, inst, "Left")
	move := r.Measure(t.Context(), cat, inst, "Move")
	if left.Err != nil || left.NA || move.Err != nil || move.NA {
		t.Fatalf("Q11 Left/Move should run: %+v %+v", left, move)
	}
}

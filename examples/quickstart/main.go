// Quickstart: compute the Why-provenance of a query with a subquery,
// reproducing query q1 of Figure 3 in Glavic & Alonso (EDBT 2009).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"perm"
)

func main() {
	db := perm.Open()

	// The paper's running example: R(a,b) and S(c,d).
	if err := db.Register("r", []string{"a", "b"}, [][]any{
		{1, 1}, {2, 1}, {3, 2},
	}); err != nil {
		log.Fatal(err)
	}
	if err := db.Register("s", []string{"c", "d"}, [][]any{
		{1, 3}, {2, 4}, {4, 5},
	}); err != nil {
		log.Fatal(err)
	}

	// A plain query with an ANY sublink.
	res, err := db.Query(`SELECT * FROM r WHERE a = ANY (SELECT c FROM s)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("q1 result:")
	fmt.Print(res.FormatTable())

	// The same query with the Perm language extension: every result tuple
	// is extended with the tuples of R and S that contributed to it.
	prov, err := db.Query(`SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nq1 provenance (Figure 3 of the paper):")
	fmt.Print(prov.FormatTable())

	fmt.Println("\nprovenance sources:")
	for _, g := range prov.Provenance {
		fmt.Printf("  %s → columns %v\n", g.Relation, g.Columns)
	}

	// Strategies are selectable per query; the equality-ANY pattern admits
	// the specialized Unn rewrite (rule U2 of the paper).
	unn, err := db.Query(`SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s)`,
		perm.WithStrategy(perm.Unn))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nUnn strategy computes the same %d provenance rows.\n", len(unn.Rows))
}

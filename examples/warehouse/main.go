// Warehouse: trace a suspicious aggregate in a sales report back to the
// fact rows that produced it — the data-warehouse error-tracing use case
// from the paper's introduction, exercising aggregation (rewrite rule R5)
// combined with a correlated sublink (Gen strategy).
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"log"

	"perm"
)

func main() {
	db := perm.Open()

	// A small star schema: stores, and a sales fact table loaded from two
	// feeds. Feed 2 accidentally double-booked an order for store 20.
	must(db.Register("stores", []string{"store_id", "city"}, [][]any{
		{10, "Zurich"}, {20, "Geneva"}, {30, "Basel"},
	}))
	must(db.Register("sales", []string{"sale_id", "store_id", "amount", "feed"}, [][]any{
		{1, 10, 120.0, 1},
		{2, 10, 80.0, 1},
		{3, 20, 200.0, 1},
		{4, 20, 200.0, 2}, // the double-booked row
		{5, 20, 50.0, 1},
		{6, 30, 70.0, 2},
	}))

	// The nightly report: revenue per city, for stores whose revenue
	// exceeds the average store revenue (a correlated-free scalar sublink
	// in HAVING).
	body := `city, sum(amount) AS revenue
	  FROM sales, stores
	  WHERE sales.store_id = stores.store_id
	  GROUP BY city
	  HAVING sum(amount) > (SELECT avg(s2.amount) FROM sales AS s2)
	  ORDER BY revenue DESC`
	res, err := db.Query("SELECT " + body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nightly report:")
	fmt.Print(res.FormatTable())

	// Geneva's 450.0 looks too high. Ask for the provenance: every report
	// row is repeated once per contributing fact row, so the analyst can
	// see exactly which sales fed the aggregate — including sale 4 from
	// feed 2 duplicating sale 3.
	prov, err := db.Query("SELECT PROVENANCE "+body, perm.WithStrategy(perm.Auto))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreport with provenance:")
	fmt.Print(prov.FormatTable())

	fmt.Println("\ncontributing sales for Geneva:")
	seen := map[string]bool{}
	for _, row := range prov.Rows {
		if row[0] != "Geneva" {
			continue
		}
		// Columns after the report's two data columns are the provenance
		// of sales and stores; the HAVING sublink's provenance (all sales
		// feeding the average) repeats each row, so print distinct ones.
		line := fmt.Sprintf("  sale_id=%v store=%v amount=%v feed=%v", row[2], row[3], row[4], row[5])
		if !seen[line] {
			seen[line] = true
			fmt.Println(line)
		}
	}
	fmt.Println("→ sale 3 and sale 4 have identical store and amount but different feeds: the feed-2 load double-booked the order.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// TPC-H: run one of the paper's nine sublink queries (Q11, "important
// stock") with provenance under every applicable strategy and compare
// runtimes — a miniature of the Figure 6 experiment.
//
//	go run ./examples/tpch
package main

import (
	"fmt"
	"log"
	"time"

	"perm"
	"perm/internal/tpch"
)

func main() {
	cat, counts := tpch.Generate(tpch.Config{SF: 0.3, Seed: 7})
	db := perm.Open()
	for _, name := range cat.Names() {
		r, _ := cat.Relation(name)
		db.Catalog().Register(name, r)
	}
	fmt.Printf("TPC-H scale 0.3: %d lineitem rows, %d orders, %d parts\n\n",
		counts.Lineitem, counts.Orders, counts.Part)

	q11, err := tpch.QueryByNum(11)
	if err != nil {
		log.Fatal(err)
	}
	text := q11.Instance(1)
	fmt.Println("Q11 (uncorrelated scalar sublink in HAVING):")
	fmt.Println(text)

	res, err := db.Query(text)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplain result: %d part keys above the value threshold\n", len(res.Rows))

	// The cost advisor predicts the strategy ranking before running any.
	advice, err := db.Advise(text)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nadvisor ranking (provenance-aware cost model):")
	for _, a := range advice {
		if a.Applicable {
			fmt.Printf("  %-5s cost %.3g\n", a.Strategy, a.Cost)
		} else {
			fmt.Printf("  %-5s not applicable\n", a.Strategy)
		}
	}

	// Provenance under each applicable strategy. Q11's sublink is
	// uncorrelated, so Left and Move apply alongside the general strategy;
	// Unn's patterns do not match any TPC-H query (§4.2.1).
	provText := "SELECT PROVENANCE " + text[len("\nSELECT "):]
	for _, s := range []perm.Strategy{perm.Gen, perm.Left, perm.Move} {
		start := time.Now()
		prov, err := db.Query(provText, perm.WithStrategy(s))
		if err != nil {
			log.Fatalf("%s: %v", s, err)
		}
		fmt.Printf("%-5s %8s  %d provenance rows over %d sources\n",
			s, time.Since(start).Round(time.Millisecond), len(prov.Rows), len(prov.Provenance))
	}
	if _, err := db.Query(provText, perm.WithStrategy(perm.Unn)); err != nil {
		fmt.Printf("Unn   refuses (as in the paper): %v\n", err)
	}
}

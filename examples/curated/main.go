// Curated database: quality control over a hand-curated gene annotation
// collection — the curated-database use case from the paper's
// introduction. The audit query uses correlated EXISTS / NOT EXISTS
// sublinks, so its provenance requires the Gen strategy (no other strategy
// applies to correlated sublinks).
//
//	go run ./examples/curated
package main

import (
	"fmt"
	"log"

	"perm"
)

func main() {
	db := perm.Open()

	must(db.Register("genes", []string{"gene_id", "symbol", "organism"}, [][]any{
		{1, "TP53", "human"},
		{2, "BRCA1", "human"},
		{3, "MYC", "human"},
		{4, "GAL4", "yeast"},
	}))
	must(db.Register("annotations", []string{"ann_id", "gene_id", "function", "curator"}, [][]any{
		{100, 1, "tumor suppression", "alice"},
		{101, 1, "apoptosis", "bob"},
		{102, 2, "dna repair", "alice"},
		{103, 3, "cell growth", "carol"},
		{104, 4, "transcription", "carol"},
	}))
	must(db.Register("citations", []string{"cit_id", "ann_id", "pmid"}, [][]any{
		{900, 100, 4001},
		{901, 101, 4002},
		{902, 102, 4003},
		// annotation 103 and 104 have no supporting citation
	}))

	// Audit: human genes that have at least one annotation lacking any
	// supporting citation. Both sublinks are correlated (they reference
	// the enclosing annotation / gene), nested two levels deep.
	audit := `organism, symbol
	  FROM genes
	  WHERE organism = 'human'
	    AND EXISTS (
	      SELECT * FROM annotations
	      WHERE annotations.gene_id = genes.gene_id
	        AND NOT EXISTS (
	          SELECT * FROM citations WHERE citations.ann_id = annotations.ann_id))
	  ORDER BY symbol`

	res, err := db.Query("SELECT " + audit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("genes failing the citation audit:")
	fmt.Print(res.FormatTable())

	// Which annotation triggered the failure, and why? The provenance of
	// the audit query names the contributing annotation (and the citation
	// side is NULL — there is nothing to cite, which is the finding).
	prov, err := db.Query("SELECT PROVENANCE "+audit, perm.WithStrategy(perm.Gen))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naudit result with provenance (Gen strategy):")
	fmt.Print(prov.FormatTable())

	// Only Gen can rewrite correlated sublinks; the restricted strategies
	// report themselves inapplicable rather than guessing.
	if _, err := db.Query("SELECT PROVENANCE "+audit, perm.WithStrategy(perm.Left)); err != nil {
		fmt.Printf("\nLeft strategy correctly refuses: %v\n", err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

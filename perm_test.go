package perm

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

func openFigure3(t *testing.T) *DB {
	t.Helper()
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 1}, {2, 1}, {3, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("s", []string{"c", "d"}, [][]any{{1, 3}, {2, 4}, {4, 5}}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPlainQuery(t *testing.T) {
	db := openFigure3(t)
	res, err := db.Query("SELECT a, b FROM r WHERE a >= 2 ORDER BY a DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != int64(3) || res.Rows[1][0] != int64(2) {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.DataColumns != 2 || len(res.Provenance) != 0 {
		t.Errorf("plain query metadata wrong: %+v", res)
	}
}

func TestProvenanceQueryAllStrategies(t *testing.T) {
	db := openFigure3(t)
	q := "SELECT PROVENANCE a, b FROM r WHERE a = ANY (SELECT c FROM s)"
	var ref *Result
	for _, s := range []Strategy{Gen, Left, Move, Unn, Auto} {
		res, err := db.Query(q, WithStrategy(s))
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if res.DataColumns != 2 {
			t.Fatalf("%s: data columns = %d", s, res.DataColumns)
		}
		if len(res.Provenance) != 2 || res.Provenance[0].Relation != "r" || res.Provenance[1].Relation != "s" {
			t.Fatalf("%s: provenance groups = %+v", s, res.Provenance)
		}
		if len(res.Rows) != 2 {
			t.Fatalf("%s: rows = %v", s, res.Rows)
		}
		if ref == nil {
			ref = res
		} else if len(res.Rows) != len(ref.Rows) {
			t.Errorf("%s disagrees with Gen", s)
		}
	}
	// Row (1,1) carries provenance R(1,1), S(1,3).
	found := false
	res, _ := db.Query(q)
	for _, row := range res.Rows {
		if row[0] == int64(1) && row[2] == int64(1) && row[4] == int64(1) && row[5] == int64(3) {
			found = true
		}
	}
	if !found {
		t.Errorf("missing provenance row for (1,1): %v", res.Rows)
	}
}

func TestStrategyNotApplicableSurfaces(t *testing.T) {
	db := openFigure3(t)
	// Correlated sublink: Left must refuse.
	q := "SELECT PROVENANCE a FROM r WHERE a = ANY (SELECT c FROM s WHERE d > b)"
	if _, err := db.Query(q, WithStrategy(Left)); err == nil {
		t.Fatal("Left on a correlated sublink should fail")
	}
	if _, err := db.Query(q, WithStrategy(Gen)); err != nil {
		t.Fatalf("Gen should apply: %v", err)
	}
	if _, err := db.Query(q, WithStrategy(Auto)); err != nil {
		t.Fatalf("Auto should fall back to Gen: %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	db := Open()
	if err := db.Register("x", []string{"a"}, [][]any{{1, 2}}); err == nil {
		t.Error("width mismatch should fail")
	}
	if err := db.Register("x", []string{"a"}, [][]any{{struct{}{}}}); err == nil {
		t.Error("unsupported type should fail")
	}
	if err := db.Register("x", []string{"a"}, [][]any{{nil}, {1.5}, {"s"}, {true}}); err != nil {
		t.Errorf("mixed valid types: %v", err)
	}
}

func TestLoadCSVAndRelations(t *testing.T) {
	db := Open()
	csv := "a,b\n1,x\n2,NULL\n"
	if err := db.LoadCSV("t", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT a FROM t WHERE b IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(2) {
		t.Errorf("rows = %v", res.Rows)
	}
	if got := db.Relations(); len(got) != 1 || got[0] != "t" {
		t.Errorf("relations = %v", got)
	}
	db.Drop("t")
	if len(db.Relations()) != 0 {
		t.Error("drop failed")
	}
}

func TestExplain(t *testing.T) {
	db := openFigure3(t)
	plain, err := db.Explain("SELECT a FROM r WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plain, "Scan r") {
		t.Errorf("explain output: %s", plain)
	}
	prov, err := db.Explain("SELECT PROVENANCE a FROM r WHERE a = ANY (SELECT c FROM s)", WithStrategy(Gen))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prov, "prov_r_a") {
		t.Errorf("provenance explain lacks prov attrs: %s", prov)
	}
}

func TestWithContextCancel(t *testing.T) {
	db := openFigure3(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Big enough to hit a cancellation check.
	_, err := db.Query("SELECT PROVENANCE a FROM r WHERE a = ANY (SELECT r2.a FROM r AS r2, r AS r3, r AS r4, r AS r5, r AS r6)",
		WithStrategy(Gen), WithContext(ctx))
	if err == nil {
		t.Fatal("canceled context should abort")
	}
}

func TestWithoutOptimizer(t *testing.T) {
	db := openFigure3(t)
	a, err := db.Query("SELECT a, c FROM r, s WHERE a = c")
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Query("SELECT a, c FROM r, s WHERE a = c", WithoutOptimizer())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Errorf("optimizer changed results: %v vs %v", a.Rows, b.Rows)
	}
}

func TestFormatTable(t *testing.T) {
	db := openFigure3(t)
	res, err := db.Query("SELECT a, b FROM r ORDER BY a LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	out := res.FormatTable()
	if !strings.Contains(out, "a") || !strings.Contains(out, "1") {
		t.Errorf("table output:\n%s", out)
	}
}

func TestOrderByRespectedInProvenance(t *testing.T) {
	db := openFigure3(t)
	res, err := db.Query("SELECT PROVENANCE a FROM r WHERE a = ANY (SELECT c FROM s) ORDER BY a DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != int64(2) {
		t.Errorf("ordered provenance rows = %v", res.Rows)
	}
}

func TestViewsLifecycle(t *testing.T) {
	db := openFigure3(t)
	if _, err := db.Exec("CREATE VIEW small AS SELECT a, b FROM r WHERE a <= 2"); err != nil {
		t.Fatal(err)
	}
	if got := db.Views(); len(got) != 1 || got[0] != "small" {
		t.Fatalf("views = %v", got)
	}
	res, err := db.Query("SELECT a FROM small WHERE b = 1 ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Provenance through a view traces to the base relations behind it.
	prov, err := db.Query("SELECT PROVENANCE a FROM small WHERE a = ANY (SELECT c FROM s)")
	if err != nil {
		t.Fatal(err)
	}
	if len(prov.Provenance) != 2 || prov.Provenance[0].Relation != "r" {
		t.Fatalf("view provenance sources = %+v", prov.Provenance)
	}
	if _, err := db.Exec("DROP VIEW small"); err != nil {
		t.Fatal(err)
	}
	if len(db.Views()) != 0 {
		t.Error("drop view failed")
	}
	if _, err := db.Exec("DROP VIEW nope"); err == nil {
		t.Error("dropping unknown view should fail")
	}
	// Defining a view over a missing relation fails at definition time and
	// leaves no trace.
	if _, err := db.Exec("CREATE VIEW bad AS SELECT x FROM missing"); err == nil {
		t.Error("invalid view body should fail")
	}
	if len(db.Views()) != 0 {
		t.Error("failed view definition leaked")
	}
}

func TestAdvise(t *testing.T) {
	db := openFigure3(t)
	advice, err := db.Advise("SELECT a FROM r WHERE a = ANY (SELECT c FROM s)")
	if err != nil {
		t.Fatal(err)
	}
	if len(advice) != 5 {
		t.Fatalf("advice = %+v", advice)
	}
	if !advice[0].Applicable {
		t.Errorf("cheapest strategy should be applicable: %+v", advice[0])
	}
	if advice[0].Strategy == Gen {
		t.Errorf("Gen should not win on an uncorrelated equality-ANY: %+v", advice)
	}
	if _, err := db.Advise("SELECT PROVENANCE a FROM r"); err == nil {
		t.Error("Advise should reject PROVENANCE queries")
	}
	// The advised strategy actually works.
	q := "SELECT PROVENANCE a FROM r WHERE a = ANY (SELECT c FROM s)"
	if _, err := db.Query(q, WithStrategy(advice[0].Strategy)); err != nil {
		t.Errorf("advised strategy failed: %v", err)
	}
}

func TestCreateViewHelper(t *testing.T) {
	db := openFigure3(t)
	if err := db.CreateView("v", "SELECT a FROM r"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT count(*) AS n FROM v")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(3) {
		t.Errorf("count over view = %v", res.Rows)
	}
}

func TestWithParallelismMatchesSequential(t *testing.T) {
	db := openFigure3(t)
	queries := []string{
		"SELECT PROVENANCE a, b FROM r WHERE a = ANY (SELECT c FROM s)",
		"SELECT PROVENANCE a FROM r WHERE EXISTS (SELECT c FROM s WHERE c = b)",
		"SELECT b, count(*) FROM r GROUP BY b",
		"SELECT r.a, s.d FROM r LEFT JOIN s ON r.a = s.c",
	}
	for _, q := range queries {
		seq, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		par, err := db.Query(q, WithParallelism(4))
		if err != nil {
			t.Fatalf("%s parallel: %v", q, err)
		}
		if fmt.Sprint(par.Rows) != fmt.Sprint(seq.Rows) {
			t.Errorf("%s: parallel rows %v, sequential rows %v", q, par.Rows, seq.Rows)
		}
	}
}

func TestBadStrategyAndSQL(t *testing.T) {
	db := openFigure3(t)
	if _, err := db.Query("SELECT PROVENANCE a FROM r", WithStrategy(Strategy("Bogus"))); err == nil {
		t.Error("bogus strategy should fail")
	}
	if _, err := db.Query("SELEC a FROM r"); err == nil {
		t.Error("bad SQL should fail")
	}
}

package perm

import (
	"strings"
	"testing"
)

// Regression tests for the bugs fixed alongside the differential fuzzer
// (their minimized fuzz-corpus twins live under
// internal/fuzz/testdata/fuzz-corpus/). Each test fails on the pre-fix
// engine.

// bothEngines runs a subtest under the streaming and the materializing
// executor.
func bothEngines(t *testing.T, fn func(t *testing.T, opts ...Option)) {
	t.Helper()
	t.Run("stream", func(t *testing.T) { fn(t) })
	t.Run("mat", func(t *testing.T) { fn(t, WithoutStreaming()) })
}

func intColumn(t *testing.T, res *Result, col int) []any {
	t.Helper()
	out := make([]any, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r[col]
	}
	return out
}

func wantColumn(t *testing.T, res *Result, col int, want ...any) {
	t.Helper()
	got := intColumn(t, res, col)
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want column %d = %v", res.Rows, col, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rows = %v, want column %d = %v", res.Rows, col, want)
		}
	}
}

// TestOrderByHiddenColumn: `SELECT a FROM r ORDER BY b` must sort by the
// non-projected column (and not leak it into the result). The pre-fix
// engine silently returned canonical (unsorted-by-b) order.
func TestOrderByHiddenColumn(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 30}, {2, 20}, {3, 10}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		for _, tc := range []struct {
			q    string
			want []any
		}{
			{`SELECT a FROM r ORDER BY b`, []any{int64(3), int64(2), int64(1)}},
			{`SELECT a FROM r ORDER BY b DESC`, []any{int64(1), int64(2), int64(3)}},
			// Qualified hidden key.
			{`SELECT a FROM r ORDER BY r.b`, []any{int64(3), int64(2), int64(1)}},
			// Hidden key expression.
			{`SELECT a FROM r ORDER BY b + a DESC`, []any{int64(1), int64(2), int64(3)}},
			// Mixed visible and hidden keys.
			{`SELECT a FROM r ORDER BY a < 3, b`, []any{int64(3), int64(2), int64(1)}},
		} {
			res, err := db.Query(tc.q, opts...)
			if err != nil {
				t.Fatalf("%s: %v", tc.q, err)
			}
			if len(res.Columns) != 1 || res.Columns[0] != "a" {
				t.Fatalf("%s: hidden key leaked into columns %v", tc.q, res.Columns)
			}
			wantColumn(t, res, 0, tc.want...)
		}
	})
}

// TestOrderByHiddenColumnLimit: the same hidden key under LIMIT
// hard-errored before the fix ("eval: unknown attribute b").
func TestOrderByHiddenColumnLimit(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 30}, {2, 20}, {3, 10}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		res, err := db.Query(`SELECT a FROM r ORDER BY b LIMIT 2`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(3), int64(2))
		res, err = db.Query(`SELECT a FROM r ORDER BY r.b DESC LIMIT 1 OFFSET 1`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(2))
	})
}

// TestOrderByHiddenColumnProvenance: hidden sort keys must work under
// SELECT PROVENANCE — the hidden column sits between the data and the
// provenance columns and is stripped from the result.
func TestOrderByHiddenColumnProvenance(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 30}, {2, 20}, {3, 10}}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT PROVENANCE a FROM r ORDER BY b`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(res.Columns, ",") != "a,prov_r_a,prov_r_b" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.DataColumns != 1 {
		t.Fatalf("DataColumns = %d, want 1", res.DataColumns)
	}
	wantColumn(t, res, 0, int64(3), int64(2), int64(1))
	// The provenance columns track the rows, sorted by the hidden key.
	wantColumn(t, res, 2, int64(10), int64(20), int64(30))
}

// TestOrderByHiddenAggregate: ORDER BY over an aggregate that is not in
// the select list sorts via a hidden column over the aggregation schema.
func TestOrderByHiddenAggregate(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 1}, {2, 1}, {5, 2}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		res, err := db.Query(`SELECT b FROM r GROUP BY b ORDER BY sum(a) DESC`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(2), int64(1))
	})
}

// TestOrderByDistinctHiddenErrors: SELECT DISTINCT cannot sort by a
// dropped column (extending the projection would change the distinct
// result) — PostgreSQL's error, at translation time.
func TestOrderByDistinctHiddenErrors(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	_, err := db.Query(`SELECT DISTINCT a FROM r ORDER BY b`)
	if err == nil || !strings.Contains(err.Error(), "DISTINCT") {
		t.Fatalf("err = %v, want the SELECT DISTINCT ORDER BY error", err)
	}
}

// TestSortKeyErrorPropagates: a failing sort-key expression is the query's
// failure. Before the fix, division by zero yielded NULL and the
// presentation sort swallowed evaluation errors, returning rows in
// arbitrary order.
func TestSortKeyErrorPropagates(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a"}, [][]any{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		for _, q := range []string{
			`SELECT a FROM r ORDER BY a / 0`,         // presentation sort path
			`SELECT a FROM r ORDER BY a / 0 LIMIT 1`, // top-k heap / sort-under-limit path
			`SELECT a FROM r ORDER BY a % 0`,
		} {
			_, err := db.Query(q, opts...)
			if err == nil || !strings.Contains(err.Error(), "division by zero") {
				t.Fatalf("%s: err = %v, want division by zero", q, err)
			}
		}
	})
}

// TestCaseWhen: CASE end-to-end — searched and simple forms, missing
// ELSE, nesting, predicate position, aggregation arguments.
func TestCaseWhen(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 10}, {2, 20}, {nil, 30}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		for _, tc := range []struct {
			q    string
			want []any
		}{
			{`SELECT CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'other' END AS x FROM r ORDER BY b`,
				[]any{"one", "two", "other"}},
			// Simple form: operand compared with =; NULL operand matches no
			// branch.
			{`SELECT CASE a WHEN 1 THEN b ELSE 0 END AS x FROM r ORDER BY b`,
				[]any{int64(10), int64(0), int64(0)}},
			// No ELSE: NULL.
			{`SELECT CASE WHEN a IS NULL THEN 1 END AS x FROM r ORDER BY b`,
				[]any{nil, nil, int64(1)}},
			// Predicate position, three-valued conditions (NULL > 1 is
			// unknown, so the branch does not fire).
			{`SELECT b FROM r WHERE CASE WHEN a > 1 THEN TRUE ELSE FALSE END ORDER BY b`,
				[]any{int64(20)}},
			// Nested CASE inside an aggregate argument.
			{`SELECT sum(CASE WHEN a IS NULL THEN 0 ELSE CASE WHEN a > 1 THEN a ELSE 0 END END) AS s FROM r`,
				[]any{int64(2)}},
		} {
			res, err := db.Query(tc.q, opts...)
			if err != nil {
				t.Fatalf("%s: %v", tc.q, err)
			}
			wantColumn(t, res, 0, tc.want...)
		}
	})
	// Parse error shape: missing END.
	if _, err := db.Query(`SELECT CASE WHEN a = 1 THEN 2 FROM r`); err == nil {
		t.Fatal("CASE without END should be a parse error")
	}
}

// TestGroupByDuplicateColumnNames: GROUP BY over equally-named columns of
// two relations (fuzzer-found): the post-aggregation schema was ambiguous
// ("eval: ambiguous attribute reference a in (a, a, …)").
func TestGroupByDuplicateColumnNames(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 1}, {1, 2}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		res, err := db.Query(
			`SELECT x.a AS xa, y.a AS ya, count(*) AS n FROM r AS x, r AS y GROUP BY x.a, y.a ORDER BY xa, ya`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 2, int64(4), int64(2), int64(2), int64(1))
	})
}

// TestInternalNamesCannotCollide: translator-internal attribute names
// (grouping columns, hidden sort keys, aggregate results) contain '#',
// which the lexer rejects in identifiers — so user columns or aliases
// spelled like the old internal names ("g1", "ord1") stay unambiguous.
func TestInternalNamesCannotCollide(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"g1", "ord1"}, [][]any{{1, 10}, {1, 20}, {2, 30}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		// Hidden sort key alongside an alias spelled like the old fresh name.
		res, err := db.Query(`SELECT g1 AS ord1 FROM r ORDER BY ord1 DESC, r.ord1`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(2), int64(1), int64(1))
		// Two grouping columns both named g1 next to a user column g1.
		res, err = db.Query(
			`SELECT x.g1 AS p, y.g1 AS q, count(*) AS n FROM r AS x, r AS y GROUP BY x.g1, y.g1 ORDER BY p, q`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 2, int64(4), int64(2), int64(2), int64(1))
	})
}

// TestGenProjectionSublinkUnknown: a projected sublink whose value is
// Unknown (NULL test value) must keep its row with NULL provenance under
// the Gen strategy, exactly as Left and Move do (fuzzer-found: Gen dropped
// the row because the paper's ¬EXISTS(Tsub) empty-case never fired).
func TestGenProjectionSublinkUnknown(t *testing.T) {
	db := Open()
	if err := db.Register("t", []string{"e", "f"}, [][]any{{1, 2}, {7, nil}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("s", []string{"c", "d"}, [][]any{{2, 0}}); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`SELECT PROVENANCE e, f = ANY (SELECT c FROM s) AS m FROM t`,
		`SELECT PROVENANCE e, CASE WHEN f IN (SELECT c FROM s) THEN 1 ELSE 0 END AS m FROM t`,
		`SELECT PROVENANCE e FROM t WHERE e = 7 OR f = ANY (SELECT c FROM s)`,
	} {
		checkDifferential(t, db, q)
	}
	// The Unknown row is present, with NULL sublink provenance.
	res, err := db.Query(`SELECT PROVENANCE e, f = ANY (SELECT c FROM s) AS m FROM t`, WithStrategy(Gen))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if row[0] == int64(7) && row[1] == nil && row[4] == nil && row[5] == nil {
			found = true
		}
	}
	if !found {
		t.Fatalf("Gen dropped the Unknown-sublink row: %v", res.Rows)
	}
}

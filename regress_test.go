package perm

import (
	"fmt"
	"strings"
	"testing"
)

// Regression tests for the bugs fixed alongside the differential fuzzer
// (their minimized fuzz-corpus twins live under
// internal/fuzz/testdata/fuzz-corpus/). Each test fails on the pre-fix
// engine.

// bothEngines runs a subtest under the streaming and the materializing
// executor.
func bothEngines(t *testing.T, fn func(t *testing.T, opts ...Option)) {
	t.Helper()
	t.Run("stream", func(t *testing.T) { fn(t) })
	t.Run("mat", func(t *testing.T) { fn(t, WithoutStreaming()) })
}

func intColumn(t *testing.T, res *Result, col int) []any {
	t.Helper()
	out := make([]any, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r[col]
	}
	return out
}

func wantColumn(t *testing.T, res *Result, col int, want ...any) {
	t.Helper()
	got := intColumn(t, res, col)
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want column %d = %v", res.Rows, col, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rows = %v, want column %d = %v", res.Rows, col, want)
		}
	}
}

// TestOrderByHiddenColumn: `SELECT a FROM r ORDER BY b` must sort by the
// non-projected column (and not leak it into the result). The pre-fix
// engine silently returned canonical (unsorted-by-b) order.
func TestOrderByHiddenColumn(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 30}, {2, 20}, {3, 10}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		for _, tc := range []struct {
			q    string
			want []any
		}{
			{`SELECT a FROM r ORDER BY b`, []any{int64(3), int64(2), int64(1)}},
			{`SELECT a FROM r ORDER BY b DESC`, []any{int64(1), int64(2), int64(3)}},
			// Qualified hidden key.
			{`SELECT a FROM r ORDER BY r.b`, []any{int64(3), int64(2), int64(1)}},
			// Hidden key expression.
			{`SELECT a FROM r ORDER BY b + a DESC`, []any{int64(1), int64(2), int64(3)}},
			// Mixed visible and hidden keys.
			{`SELECT a FROM r ORDER BY a < 3, b`, []any{int64(3), int64(2), int64(1)}},
		} {
			res, err := db.Query(tc.q, opts...)
			if err != nil {
				t.Fatalf("%s: %v", tc.q, err)
			}
			if len(res.Columns) != 1 || res.Columns[0] != "a" {
				t.Fatalf("%s: hidden key leaked into columns %v", tc.q, res.Columns)
			}
			wantColumn(t, res, 0, tc.want...)
		}
	})
}

// TestOrderByHiddenColumnLimit: the same hidden key under LIMIT
// hard-errored before the fix ("eval: unknown attribute b").
func TestOrderByHiddenColumnLimit(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 30}, {2, 20}, {3, 10}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		res, err := db.Query(`SELECT a FROM r ORDER BY b LIMIT 2`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(3), int64(2))
		res, err = db.Query(`SELECT a FROM r ORDER BY r.b DESC LIMIT 1 OFFSET 1`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(2))
	})
}

// TestOrderByHiddenColumnProvenance: hidden sort keys must work under
// SELECT PROVENANCE — the hidden column sits between the data and the
// provenance columns and is stripped from the result.
func TestOrderByHiddenColumnProvenance(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 30}, {2, 20}, {3, 10}}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT PROVENANCE a FROM r ORDER BY b`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(res.Columns, ",") != "a,prov_r_a,prov_r_b" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.DataColumns != 1 {
		t.Fatalf("DataColumns = %d, want 1", res.DataColumns)
	}
	wantColumn(t, res, 0, int64(3), int64(2), int64(1))
	// The provenance columns track the rows, sorted by the hidden key.
	wantColumn(t, res, 2, int64(10), int64(20), int64(30))
}

// TestOrderByHiddenAggregate: ORDER BY over an aggregate that is not in
// the select list sorts via a hidden column over the aggregation schema.
func TestOrderByHiddenAggregate(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 1}, {2, 1}, {5, 2}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		res, err := db.Query(`SELECT b FROM r GROUP BY b ORDER BY sum(a) DESC`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(2), int64(1))
	})
}

// TestOrderByDistinctHiddenErrors: SELECT DISTINCT cannot sort by a
// dropped column (extending the projection would change the distinct
// result) — PostgreSQL's error, at translation time.
func TestOrderByDistinctHiddenErrors(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	_, err := db.Query(`SELECT DISTINCT a FROM r ORDER BY b`)
	if err == nil || !strings.Contains(err.Error(), "DISTINCT") {
		t.Fatalf("err = %v, want the SELECT DISTINCT ORDER BY error", err)
	}
}

// TestSortKeyErrorPropagates: a failing sort-key expression is the query's
// failure. Before the fix, division by zero yielded NULL and the
// presentation sort swallowed evaluation errors, returning rows in
// arbitrary order.
func TestSortKeyErrorPropagates(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a"}, [][]any{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		for _, q := range []string{
			`SELECT a FROM r ORDER BY a / 0`,         // presentation sort path
			`SELECT a FROM r ORDER BY a / 0 LIMIT 1`, // top-k heap / sort-under-limit path
			`SELECT a FROM r ORDER BY a % 0`,
		} {
			_, err := db.Query(q, opts...)
			if err == nil || !strings.Contains(err.Error(), "division by zero") {
				t.Fatalf("%s: err = %v, want division by zero", q, err)
			}
		}
	})
}

// TestCaseWhen: CASE end-to-end — searched and simple forms, missing
// ELSE, nesting, predicate position, aggregation arguments.
func TestCaseWhen(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 10}, {2, 20}, {nil, 30}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		for _, tc := range []struct {
			q    string
			want []any
		}{
			{`SELECT CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'other' END AS x FROM r ORDER BY b`,
				[]any{"one", "two", "other"}},
			// Simple form: operand compared with =; NULL operand matches no
			// branch.
			{`SELECT CASE a WHEN 1 THEN b ELSE 0 END AS x FROM r ORDER BY b`,
				[]any{int64(10), int64(0), int64(0)}},
			// No ELSE: NULL.
			{`SELECT CASE WHEN a IS NULL THEN 1 END AS x FROM r ORDER BY b`,
				[]any{nil, nil, int64(1)}},
			// Predicate position, three-valued conditions (NULL > 1 is
			// unknown, so the branch does not fire).
			{`SELECT b FROM r WHERE CASE WHEN a > 1 THEN TRUE ELSE FALSE END ORDER BY b`,
				[]any{int64(20)}},
			// Nested CASE inside an aggregate argument.
			{`SELECT sum(CASE WHEN a IS NULL THEN 0 ELSE CASE WHEN a > 1 THEN a ELSE 0 END END) AS s FROM r`,
				[]any{int64(2)}},
		} {
			res, err := db.Query(tc.q, opts...)
			if err != nil {
				t.Fatalf("%s: %v", tc.q, err)
			}
			wantColumn(t, res, 0, tc.want...)
		}
	})
	// Parse error shape: missing END.
	if _, err := db.Query(`SELECT CASE WHEN a = 1 THEN 2 FROM r`); err == nil {
		t.Fatal("CASE without END should be a parse error")
	}
}

// TestGroupByDuplicateColumnNames: GROUP BY over equally-named columns of
// two relations (fuzzer-found): the post-aggregation schema was ambiguous
// ("eval: ambiguous attribute reference a in (a, a, …)").
func TestGroupByDuplicateColumnNames(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 1}, {1, 2}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		res, err := db.Query(
			`SELECT x.a AS xa, y.a AS ya, count(*) AS n FROM r AS x, r AS y GROUP BY x.a, y.a ORDER BY xa, ya`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 2, int64(4), int64(2), int64(2), int64(1))
	})
}

// TestInternalNamesCannotCollide: translator-internal attribute names
// (grouping columns, hidden sort keys, aggregate results) contain '#',
// which the lexer rejects in identifiers — so user columns or aliases
// spelled like the old internal names ("g1", "ord1") stay unambiguous.
func TestInternalNamesCannotCollide(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"g1", "ord1"}, [][]any{{1, 10}, {1, 20}, {2, 30}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		// Hidden sort key alongside an alias spelled like the old fresh name.
		res, err := db.Query(`SELECT g1 AS ord1 FROM r ORDER BY ord1 DESC, r.ord1`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(2), int64(1), int64(1))
		// Two grouping columns both named g1 next to a user column g1.
		res, err = db.Query(
			`SELECT x.g1 AS p, y.g1 AS q, count(*) AS n FROM r AS x, r AS y GROUP BY x.g1, y.g1 ORDER BY p, q`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 2, int64(4), int64(2), int64(2), int64(1))
	})
}

// TestGenProjectionSublinkUnknown: a projected sublink whose value is
// Unknown (NULL test value) must keep its row with NULL provenance under
// the Gen strategy, exactly as Left and Move do (fuzzer-found: Gen dropped
// the row because the paper's ¬EXISTS(Tsub) empty-case never fired).
func TestGenProjectionSublinkUnknown(t *testing.T) {
	db := Open()
	if err := db.Register("t", []string{"e", "f"}, [][]any{{1, 2}, {7, nil}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("s", []string{"c", "d"}, [][]any{{2, 0}}); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`SELECT PROVENANCE e, f = ANY (SELECT c FROM s) AS m FROM t`,
		`SELECT PROVENANCE e, CASE WHEN f IN (SELECT c FROM s) THEN 1 ELSE 0 END AS m FROM t`,
		`SELECT PROVENANCE e FROM t WHERE e = 7 OR f = ANY (SELECT c FROM s)`,
	} {
		checkDifferential(t, db, q)
	}
	// The Unknown row is present, with NULL sublink provenance.
	res, err := db.Query(`SELECT PROVENANCE e, f = ANY (SELECT c FROM s) AS m FROM t`, WithStrategy(Gen))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if row[0] == int64(7) && row[1] == nil && row[4] == nil && row[5] == nil {
			found = true
		}
	}
	if !found {
		t.Fatalf("Gen dropped the Unknown-sublink row: %v", res.Rows)
	}
}

// TestOrderByOrdinal: `ORDER BY 1` must sort by the first projected column.
// Before the semantic-analysis pass the ordinal parsed as the constant 1 —
// a no-op sort key — and the query silently returned unsorted rows.
func TestOrderByOrdinal(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{2, 20}, {1, 30}, {3, 10}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		for _, tc := range []struct {
			q    string
			want []any
		}{
			{`SELECT a FROM r ORDER BY 1 DESC`, []any{int64(3), int64(2), int64(1)}},
			{`SELECT a FROM r ORDER BY 1`, []any{int64(1), int64(2), int64(3)}},
			{`SELECT a, b FROM r ORDER BY 2`, []any{int64(3), int64(2), int64(1)}},
			{`SELECT a + 10 AS x FROM r ORDER BY 1 DESC`, []any{int64(13), int64(12), int64(11)}},
			{`SELECT * FROM r ORDER BY 2 DESC`, []any{int64(1), int64(2), int64(3)}},
			{`SELECT a FROM r ORDER BY 1 DESC LIMIT 2`, []any{int64(3), int64(2)}},
		} {
			res, err := db.Query(tc.q, opts...)
			if err != nil {
				t.Fatalf("%s: %v", tc.q, err)
			}
			wantColumn(t, res, 0, tc.want...)
		}
	})
}

// TestOrderByOrdinalRange: an out-of-range ordinal must be an error, as in
// PostgreSQL — before the fix `ORDER BY 5` was silently ignored.
func TestOrderByOrdinalRange(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		for q, want := range map[string]string{
			`SELECT a FROM r ORDER BY 5`:    "ORDER BY position 5 is not in select list",
			`SELECT a FROM r ORDER BY 0`:    "ORDER BY position 0 is not in select list",
			`SELECT a FROM r ORDER BY 1.5`:  "non-integer constant in ORDER BY",
			`SELECT a, b FROM r GROUP BY 3`: "GROUP BY position 3 is not in select list",
		} {
			_, err := db.Query(q, opts...)
			if err == nil || !strings.Contains(err.Error(), want) {
				t.Fatalf("%s: error = %v, want %q", q, err, want)
			}
		}
	})
}

// TestGroupByOrdinal: `GROUP BY 1` must group by the first projected column.
// Before the fix it grouped by the constant 1 and the projection of b then
// hard-errored with a leaked internal name ("unknown attribute b (scope
// (g#1, agg#2), …)").
func TestGroupByOrdinal(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 10}, {2, 10}, {3, 20}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		res, err := db.Query(`SELECT b, sum(a) FROM r GROUP BY 1 ORDER BY 1`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(10), int64(20))
		wantColumn(t, res, 1, int64(3), int64(3))
		res, err = db.Query(`SELECT b AS g, count(*) AS n FROM r GROUP BY 1 ORDER BY 2 DESC, 1`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(10), int64(20))
	})
}

// TestIntOverflow: int64 arithmetic and sum must raise PostgreSQL's
// "bigint out of range" instead of silently wrapping around.
func TestIntOverflow(t *testing.T) {
	db := Open()
	max := int64(9223372036854775807)
	if err := db.Register("big", []string{"v"}, [][]any{{max}, {1}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		for _, q := range []string{
			`SELECT v + 1 FROM big`,
			`SELECT sum(v) FROM big`,
			`SELECT v * 3 FROM big`,
			`SELECT 0 - v - 2 FROM big`,
			`SELECT 9223372036854775807 + 1`,
		} {
			_, err := db.Query(q, opts...)
			if err == nil || !strings.Contains(err.Error(), "bigint out of range") {
				t.Fatalf("%s: error = %v, want bigint out of range", q, err)
			}
		}
		// Non-overflowing paths still work, and float sums do not overflow.
		res, err := db.Query(`SELECT sum(v - 1) FROM big`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, max-1)
	})
	// sum overflow is decided by the exact total, not by intermediate
	// prefixes: {max, 1, -2} sums to max-1 regardless of the accumulation
	// order the executor or worker pool happens to use.
	if err := db.Register("mixed", []string{"v"}, [][]any{{max}, {1}, {-2}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		res, err := db.Query(`SELECT sum(v) FROM mixed`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, max-1)
	})
}

// TestCrossTypeComparison: comparing a string column against a number was
// silently Unknown (filtering every row); it must be a typed error, and the
// same error under both executors and every provenance strategy.
func TestCrossTypeComparison(t *testing.T) {
	db := Open()
	if err := db.Register("u", []string{"n"}, [][]any{{"x"}, {"y"}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		for _, q := range []string{
			`SELECT n FROM u WHERE n = 1`,
			`SELECT n FROM u WHERE n > 1`,
			`SELECT n FROM u WHERE 'x' > 1`,
			`SELECT n FROM u WHERE n IN (1, 2)`,
			`SELECT n FROM u WHERE n BETWEEN 1 AND 2`,
		} {
			_, err := db.Query(q, opts...)
			if err == nil || !strings.Contains(err.Error(), "operator does not exist") {
				t.Fatalf("%s: error = %v, want operator does not exist", q, err)
			}
		}
	})
	// The error is raised at analysis, so every strategy × executor agrees.
	for _, s := range []Strategy{Gen, Left, Move, Unn, UnnX, Auto} {
		_, err := db.Query(`SELECT PROVENANCE n FROM u WHERE n > 1`, WithStrategy(s))
		if err == nil || !strings.Contains(err.Error(), "operator does not exist: string > integer") {
			t.Fatalf("%s: error = %v, want operator does not exist", s, err)
		}
	}
}

// TestAnalyzerErrorsNameUserColumns: analyzer errors must name the column
// the user wrote, with a source position — never translator-internal
// attribute names (which contain '#').
func TestAnalyzerErrorsNameUserColumns(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	for q, want := range map[string]string{
		`SELECT b, sum(a) FROM r`:                           `column "b" must appear in the GROUP BY clause or be used in an aggregate function`,
		`SELECT b, sum(a) FROM r GROUP BY a`:                `column "b" must appear in the GROUP BY clause`,
		`SELECT a FROM r GROUP BY a ORDER BY r.b`:           `column "r.b" must appear in the GROUP BY clause`,
		`SELECT missing FROM r`:                             `column "missing" does not exist`,
		`SELECT r.missing FROM r`:                           `column "r.missing" does not exist`,
		`SELECT x.a FROM r AS x, r AS y WHERE c=1`:          `column "c" does not exist`,
		`SELECT a FROM r AS x, r AS y`:                      `column reference "a" is ambiguous`,
		`SELECT sum(a) FROM r WHERE sum(a) > 0`:             `aggregate functions are not allowed in WHERE`,
		`SELECT sum(sum(a)) FROM r`:                         `aggregate function calls cannot be nested`,
		`SELECT nosuch(a) FROM r`:                           `function nosuch(integer) does not exist`,
		`SELECT upper(a) FROM r`:                            `function upper(integer) does not exist`,
		`SELECT CAST(a AS nosuchtype) FROM r`:               `type "nosuchtype" does not exist`,
		`SELECT a FROM r WHERE a`:                           `argument of WHERE must be type boolean, not type integer`,
		`SELECT a FROM r WHERE a AND TRUE`:                  `argument of AND must be type boolean, not type integer`,
		`SELECT a || b FROM r`:                              `operator does not exist: integer || integer`,
		`SELECT a FROM r WHERE a LIKE 'x'`:                  `operator does not exist: integer LIKE`,
		`SELECT CASE WHEN a = 1 THEN 1 ELSE 'x' END FROM r`: `CASE types integer and string cannot be matched`,
		`SELECT a FROM r UNION SELECT 'x'`:                  `UNION types integer and string cannot be matched`,
	} {
		_, err := db.Query(q)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("%s: error = %v, want %q", q, err, want)
		}
		if strings.Contains(err.Error(), "#") {
			t.Fatalf("%s: error leaks internal names: %v", q, err)
		}
	}
	// Positions are reported where the offending token sits.
	_, err := db.Query(`SELECT missing FROM r`)
	if err == nil || !strings.Contains(err.Error(), "position 8") {
		t.Fatalf("error should carry position 8, got %v", err)
	}
}

// TestStringExpressions: the string operator/function surface — ||, LIKE,
// upper/lower/length/substr, CAST — end to end, including NULL propagation
// and FROM-less SELECT.
func TestStringExpressions(t *testing.T) {
	db := Open()
	if err := db.Register("u", []string{"g", "h"}, [][]any{{"ab", 1}, {"cd", 2}, {nil, 3}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		for _, tc := range []struct {
			q    string
			want []any
		}{
			{`SELECT 'a' || 'b' || 'c'`, []any{"abc"}},
			{`SELECT upper('ab') || lower('CD')`, []any{"ABcd"}},
			{`SELECT length('hello')`, []any{int64(5)}},
			{`SELECT substr('hello', 2, 3)`, []any{"ell"}},
			{`SELECT substr('hello', 0, 2)`, []any{"h"}},
			{`SELECT substr('hello', 4)`, []any{"lo"}},
			{`SELECT CAST(12 AS string) || '!'`, []any{"12!"}},
			{`SELECT CAST('42' AS integer) + 1`, []any{int64(43)}},
			{`SELECT CAST('1.5' AS float) * 2`, []any{2 * 1.5}},
			{`SELECT CAST(TRUE AS integer)`, []any{int64(1)}},
			{`SELECT CAST('t' AS boolean)`, []any{true}},
			{`SELECT g || 'x' AS gx FROM u WHERE h = 1`, []any{"abx"}},
			{`SELECT g FROM u WHERE g LIKE 'a%'`, []any{"ab"}},
			{`SELECT g FROM u WHERE g LIKE '_b'`, []any{"ab"}},
			{`SELECT g FROM u WHERE g NOT LIKE '%b%' ORDER BY 1`, []any{"cd"}},
			{`SELECT h FROM u WHERE g IS NULL`, []any{int64(3)}},
			{`SELECT upper(g) FROM u WHERE h = 2`, []any{"CD"}},
			{`SELECT g || 'x' AS e FROM u WHERE h = 3`, []any{nil}},
			{`SELECT h FROM u ORDER BY g DESC LIMIT 1`, []any{int64(3)}},
			{`SELECT min(g) FROM u`, []any{"ab"}},
			{`SELECT max(g) || '!' FROM u`, []any{"cd!"}},
		} {
			res, err := db.Query(tc.q, opts...)
			if err != nil {
				t.Fatalf("%s: %v", tc.q, err)
			}
			wantColumn(t, res, 0, tc.want...)
		}
		// Runtime cast errors carry PostgreSQL's message.
		_, err := db.Query(`SELECT CAST(g AS integer) FROM u`, opts...)
		if err == nil || !strings.Contains(err.Error(), "invalid input syntax for type integer") {
			t.Fatalf("cast error = %v", err)
		}
	})
}

// TestStringProvenance: string functions, CAST and LIKE under SELECT
// PROVENANCE yield identical witness sets across every strategy and
// executor mode.
func TestStringProvenance(t *testing.T) {
	db := Open()
	if err := db.Register("u", []string{"g", "h"}, [][]any{{"ab", 1}, {"cd", 2}, {"ae", 2}, {nil, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 1}, {2, 1}, {3, 2}}); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`SELECT PROVENANCE upper(g) AS s FROM u WHERE g LIKE 'a%'`,
		`SELECT PROVENANCE g || 'x' AS s FROM u WHERE h = ANY (SELECT a FROM r)`,
		`SELECT PROVENANCE g FROM u WHERE EXISTS (SELECT a FROM r WHERE a = length(g))`,
		`SELECT PROVENANCE CAST(h AS string) || g AS s FROM u WHERE h IN (SELECT b FROM r)`,
		`SELECT PROVENANCE substr(g, 1, 1) AS s, count(*) AS n FROM u GROUP BY 1 ORDER BY 1`,
	} {
		checkDifferential(t, db, q)
	}
}

// TestFromlessSelect: SELECT without FROM evaluates over one empty tuple.
func TestFromlessSelect(t *testing.T) {
	db := Open()
	bothEngines(t, func(t *testing.T, opts ...Option) {
		res, err := db.Query(`SELECT 1 + 2 AS x, 'a' || 'b' AS s`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0] != int64(3) || res.Rows[0][1] != "ab" {
			t.Fatalf("rows = %v", res.Rows)
		}
		// A FROM-less subquery works as a scalar and in set operations.
		if err := db.Register("r", []string{"a"}, [][]any{{1}, {2}}); err != nil {
			t.Fatal(err)
		}
		res, err = db.Query(`SELECT a FROM r WHERE a = (SELECT 2)`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(2))
		res, err = db.Query(`SELECT a FROM r UNION SELECT 5 ORDER BY 1`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(1), int64(2), int64(5))
	})
}

// TestGroupingShadowedColumn: an inner-scope column that shadows an outer
// grouping column must type as the inner column — the analyzer's grouping
// shortcut must not capture it (review-found).
func TestGroupingShadowedColumn(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a"}, [][]any{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("s", []string{"a"}, [][]any{{"x"}, {"yy"}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		// The inner a is s.a (string): LIKE over it is well-typed even
		// though the outer block groups by the integer r.a.
		res, err := db.Query(
			`SELECT count(*) AS n FROM r GROUP BY a HAVING EXISTS (SELECT a FROM s WHERE a LIKE 'x%')`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(1), int64(1))
		// Conversely, integer arithmetic over the shadowed string column
		// must be the error.
		_, err = db.Query(
			`SELECT count(*) AS n FROM r GROUP BY a HAVING EXISTS (SELECT a FROM s WHERE a + 1 > 0)`, opts...)
		if err == nil || !strings.Contains(err.Error(), "operator does not exist") {
			t.Fatalf("err = %v, want operator does not exist", err)
		}
	})
}

// TestOrderByOrdinalDuplicateNames: an ordinal names a position, so
// duplicate output column names are no ambiguity (review-found).
func TestOrderByOrdinalDuplicateNames(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{2, 1}, {1, 2}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		res, err := db.Query(`SELECT a, a FROM r ORDER BY 1`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(1), int64(2))
		res, err = db.Query(`SELECT * FROM r AS x, r AS y ORDER BY 1 DESC, 4`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(2), int64(2), int64(1), int64(1))
	})
}

// TestOrdinalOverLiteralColumn: an ordinal resolving to a literal select
// column must stay stable under re-analysis — views analyze their stored
// body on every referencing query, so a naive substitution would turn
// `SELECT a, 5 ... ORDER BY 2` into `ORDER BY 5` and break the view
// forever (review-found).
func TestOrdinalOverLiteralColumn(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a"}, [][]any{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("v", `SELECT a, 5 FROM r ORDER BY 2`); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("w", `SELECT 5, count(*) FROM r GROUP BY 1`); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		for i := 0; i < 3; i++ { // every use re-analyzes the stored body
			res, err := db.Query(`SELECT * FROM v ORDER BY 1`, opts...)
			if err != nil {
				t.Fatalf("use %d: %v", i, err)
			}
			wantColumn(t, res, 0, int64(1), int64(2))
			res, err = db.Query(`SELECT * FROM w`, opts...)
			if err != nil {
				t.Fatalf("use %d: %v", i, err)
			}
			wantColumn(t, res, 1, int64(2))
		}
	})
}

// TestOrderByOrdinalDuplicateAliases: an ordinal over duplicate output
// aliases keeps its positional meaning (review-found).
func TestOrderByOrdinalDuplicateAliases(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 2}, {2, 1}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		res, err := db.Query(`SELECT a AS x, b AS x FROM r ORDER BY 2`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(2), int64(1))
	})
}

// TestSubstrHugeCount: substr with a count near int64 max must clamp to
// the string instead of overflowing into an empty result (review-found).
func TestSubstrHugeCount(t *testing.T) {
	db := Open()
	bothEngines(t, func(t *testing.T, opts ...Option) {
		res, err := db.Query(`SELECT substr('hello', 2, 9223372036854775807) AS s`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, "ello")
	})
}

// TestOrderByOrdinalAliasShadowsColumn: an ordinal whose target's alias
// shadows a source column name must still sort by the output position —
// substituting the alias verbatim re-resolved to the wrong column
// (review-found).
func TestOrderByOrdinalAliasShadowsColumn(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 30}, {2, 20}, {3, 10}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		res, err := db.Query(`SELECT a AS b, b AS a FROM r ORDER BY 1`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(1), int64(2), int64(3))
		res, err = db.Query(`SELECT a AS b, b AS a FROM r ORDER BY 1 DESC`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(3), int64(2), int64(1))
	})
}

// TestStarOrdinalDuplicateTables: a star ordinal over a duplicated
// unaliased table is a clean analysis-time ambiguity error (PostgreSQL
// rejects the FROM list outright) instead of a runtime error leaking
// internal scope names (review-found).
func TestStarOrdinalDuplicateTables(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	_, err := db.Query(`SELECT * FROM r, r ORDER BY 3`)
	if err == nil || !strings.Contains(err.Error(), `column reference "r.a" is ambiguous`) ||
		!strings.Contains(err.Error(), "position") || strings.Contains(err.Error(), "#") {
		t.Fatalf("err = %v, want a positioned ambiguity error without internal names", err)
	}
}

// TestGroupingAggArgSubquery: correlated references made from inside an
// aggregate argument — including via nested subqueries — are exempt from
// the grouping rule, and qualified/unqualified spellings of one grouping
// expression match (review-found).
func TestGroupingAggArgSubquery(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 1}, {2, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("s", []string{"c", "d"}, [][]any{{10, 1}, {20, 2}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		// b is ungrouped but appears only inside the aggregate's argument,
		// correlated through a subquery.
		res, err := db.Query(
			`SELECT a, sum(a + (SELECT max(c) FROM s WHERE d = b)) AS x FROM r GROUP BY a ORDER BY 1`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 1, int64(11), int64(22))
		// Qualified GROUP BY expression, unqualified select-list spelling —
		// and the converse.
		res, err = db.Query(`SELECT a + 1 AS x FROM r GROUP BY r.a + 1 ORDER BY 1`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(2), int64(3))
		res, err = db.Query(`SELECT r.a + 1 AS x FROM r GROUP BY a + 1 ORDER BY 1`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(2), int64(3))
		// The rule still fires for genuinely ungrouped references.
		_, err = db.Query(`SELECT b + 1 FROM r GROUP BY a + 1`, opts...)
		if err == nil || !strings.Contains(err.Error(), "must appear in the GROUP BY clause") {
			t.Fatalf("err = %v, want grouping error", err)
		}
	})
}

// TestGroupedSublinkReferences: output-clause sublinks of a grouped query —
// qualified correlated references to a grouping column, and a GROUP BY
// ordinal sharing the select-list subquery — execute instead of failing
// with leaked internal names (review-found).
func TestGroupedSublinkReferences(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 1}, {2, 1}, {3, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("u", []string{"g", "h"}, [][]any{{"x", 1}, {"y", 1}, {"z", 2}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		// Qualified correlated reference to the grouping column.
		res, err := db.Query(
			`SELECT b, (SELECT count(*) FROM u WHERE h = r.b) AS n FROM r GROUP BY b ORDER BY 1`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 1, int64(2), int64(1))
		// GROUP BY ordinal sharing the select-list subquery expression.
		res, err = db.Query(
			`SELECT (SELECT count(*) FROM u WHERE h = r.a) AS k FROM r GROUP BY 1 ORDER BY 1`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(0), int64(1), int64(2))
		// An aggregate over only outer columns inside an output sublink is
		// beyond the engine (PostgreSQL treats it as an outer aggregate);
		// it must be a clean analysis error, not an internal-name leak.
		_, err = db.Query(`SELECT b, (SELECT sum(r.a) FROM u) FROM r GROUP BY b`, opts...)
		if err == nil || !strings.Contains(err.Error(), "must appear in the GROUP BY clause") ||
			strings.Contains(err.Error(), "#") {
			t.Fatalf("err = %v, want clean grouping error", err)
		}
	})
}

// TestNegativeOrdinal: ORDER BY -1 / GROUP BY -1 must error like any other
// out-of-range position — the unary minus folds into the constant, as in
// PostgreSQL (review-found silent no-op).
func TestNegativeOrdinal(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a"}, [][]any{{1}}); err != nil {
		t.Fatal(err)
	}
	for q, want := range map[string]string{
		`SELECT a FROM r ORDER BY -1`: "ORDER BY position -1 is not in select list",
		`SELECT a FROM r GROUP BY -2`: "GROUP BY position -2 is not in select list",
	} {
		_, err := db.Query(q)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("%s: err = %v, want %q", q, err, want)
		}
	}
	// A negated literal as a select column survives re-analysis in a view.
	if err := db.CreateView("nv", `SELECT a, -5 FROM r ORDER BY 2`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := db.Query(`SELECT * FROM nv`)
		if err != nil {
			t.Fatalf("use %d: %v", i, err)
		}
		wantColumn(t, res, 1, int64(-5))
	}
}

// TestConcurrentViewDDL: queries racing with CREATE/DROP VIEW must be safe
// — the views map is replaced under a lock, never mutated in place (run
// under -race in CI).
func TestConcurrentViewDDL(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a"}, [][]any{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("v0", `SELECT a FROM r ORDER BY 1`); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			name := fmt.Sprintf("v%d", i+1)
			if err := db.CreateView(name, `SELECT a, 5 FROM r GROUP BY 1 ORDER BY 1`); err != nil {
				t.Error(err)
				return
			}
			if _, err := db.Exec("DROP VIEW " + name); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
			if _, err := db.Query(`SELECT * FROM v0`); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestOrderByAggregateOverAlias: an ORDER BY aggregate's argument is
// computed below the projection, so output aliases are not visible in it —
// a clean analysis error, as in PostgreSQL, not a leaked internal name at
// run time (review-found).
func TestOrderByAggregateOverAlias(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	_, err := db.Query(`SELECT a AS x FROM r GROUP BY a ORDER BY sum(x)`)
	if err == nil || !strings.Contains(err.Error(), `column "x" does not exist`) ||
		strings.Contains(err.Error(), "#") {
		t.Fatalf("err = %v, want a clean unknown-column error", err)
	}
	// The source column itself stays fine.
	if _, err := db.Query(`SELECT a AS x FROM r GROUP BY a ORDER BY sum(b)`); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCreateViews: concurrent CREATE VIEWs must not lose each
// other's registrations (review-found lost update).
func TestConcurrentCreateViews(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a"}, [][]any{{1}}); err != nil {
		t.Fatal(err)
	}
	const n = 20
	errs := make(chan error, 2*n)
	for w := 0; w < 2; w++ {
		go func(w int) {
			for i := 0; i < n; i++ {
				errs <- db.CreateView(fmt.Sprintf("w%dv%d", w, i), `SELECT a FROM r`)
			}
		}(w)
	}
	for i := 0; i < 2*n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(db.Views()); got != 2*n {
		t.Fatalf("views = %d, want %d (lost concurrent registrations)", got, 2*n)
	}
}

// TestOrderByDuplicateIdenticalColumns: duplicate output columns that
// denote the same expression are no ambiguity for a bare ORDER BY name
// (review-found regression against the pre-analyzer engine).
func TestOrderByDuplicateIdenticalColumns(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a"}, [][]any{{2}, {1}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		for _, q := range []string{
			`SELECT a, a FROM r ORDER BY a`,
			`SELECT a, r.a FROM r ORDER BY a`,
		} {
			res, err := db.Query(q, opts...)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			wantColumn(t, res, 0, int64(1), int64(2))
		}
	})
	// Different expressions under one name stay ambiguous, as in PostgreSQL.
	if err := db.Register("s", []string{"a", "b"}, [][]any{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	_, err := db.Query(`SELECT a AS x, b AS x FROM s ORDER BY x`)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v, want ambiguity error", err)
	}
}

// TestOrderByAliasPrecedence: a bare ORDER BY name that is both an output
// alias and a source column resolves to the output alias, as in PostgreSQL
// (review-found silent wrong order under swapped aliases).
func TestOrderByAliasPrecedence(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 30}, {2, 20}, {3, 10}}); err != nil {
		t.Fatal(err)
	}
	bothEngines(t, func(t *testing.T, opts ...Option) {
		res, err := db.Query(`SELECT a AS b, b AS a FROM r ORDER BY a`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		// ORDER BY a names the output alias (source b values ascending).
		wantColumn(t, res, 0, int64(3), int64(2), int64(1))
		// Inside an expression the name resolves to the source column.
		res, err = db.Query(`SELECT a AS b, b AS a FROM r ORDER BY a + 0`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantColumn(t, res, 0, int64(1), int64(2), int64(3))
	})
	// Narrow numeric type spellings are rejected rather than silently
	// widened to 64 bits.
	for _, q := range []string{
		`SELECT CAST(70000 AS smallint)`,
		`SELECT CAST(5000000000 AS int4)`,
		`SELECT CAST(1 AS real)`,
	} {
		if _, err := db.Query(q); err == nil || !strings.Contains(err.Error(), "does not exist") {
			t.Fatalf("%s: err = %v, want type-does-not-exist", q, err)
		}
	}
}

// Benchmarks regenerating the paper's evaluation (one family per figure).
// The parameters are scaled for `go test -bench` turnaround; the
// cmd/permbench tool runs the full sweeps with the paper's timeout
// methodology and prints the complete tables.
package perm

import (
	"fmt"
	"runtime"
	"testing"

	"perm/internal/catalog"
	"perm/internal/eval"
	"perm/internal/opt"
	"perm/internal/rewrite"
	"perm/internal/sql"
	"perm/internal/synth"
	"perm/internal/tpch"
)

// run compiles, optionally rewrites, optimizes and evaluates one query,
// reporting rows produced.
func run(b *testing.B, cat *catalog.Catalog, query string, strategy string, optimize bool) {
	b.Helper()
	tr, err := sql.Compile(cat, query)
	if err != nil {
		b.Fatal(err)
	}
	plan := tr.Plan
	if strategy != "" {
		strat, err := rewrite.ParseStrategy(strategy)
		if err != nil {
			b.Fatal(err)
		}
		res, err := rewrite.Rewrite(plan, strat)
		if err != nil {
			b.Skipf("strategy %s: %v", strategy, err)
		}
		plan = res.Plan
	}
	if optimize {
		plan = opt.Optimize(plan)
	}
	ev := eval.New(cat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6 is the TPC-H experiment: every sublink query under the
// baseline and every applicable strategy, at a small scale (larger scales
// via cmd/permbench).
func BenchmarkFigure6(b *testing.B) {
	cat, _ := tpch.Generate(tpch.Config{SF: 0.1, Seed: 1})
	for _, q := range tpch.SublinkQueries() {
		query := q.Instance(1)
		strategies := []string{"", "Gen"}
		if !q.Correlated {
			strategies = append(strategies, "Left", "Move")
		}
		// Gen over the widest CrossBases is the paper's several-hours
		// case; keep those out of the default bench run.
		if q.Num == 2 || q.Num == 20 || q.Num == 21 {
			strategies = []string{"", "Left", "Move"}
			if q.Correlated {
				strategies = []string{""}
			}
		}
		for _, s := range strategies {
			name := s
			if name == "" {
				name = "baseline"
			}
			b.Run(fmt.Sprintf("Q%d/%s", q.Num, name), func(b *testing.B) {
				run(b, cat, query, s, true)
			})
		}
	}
}

// BenchmarkFigure7 varies the input relation size with the sublink
// relation fixed, for q1 (all strategies) and q2 (all but Unn).
func BenchmarkFigure7(b *testing.B) {
	for _, size := range []int{50, 200, 800} {
		w := synth.Workload{InputSize: size, SublinkSize: 100, Seed: 1}
		cat := w.Catalog()
		for _, s := range []string{"", "Gen", "Left", "Move", "Unn"} {
			name := s
			if name == "" {
				name = "baseline"
			}
			b.Run(fmt.Sprintf("q1/input=%d/%s", size, name), func(b *testing.B) {
				run(b, cat, w.Q1(0), s, true)
			})
		}
		for _, s := range []string{"Gen", "Left", "Move"} {
			b.Run(fmt.Sprintf("q2/input=%d/%s", size, s), func(b *testing.B) {
				run(b, cat, w.Q2(0), s, true)
			})
		}
	}
}

// BenchmarkFigure8 varies the sublink relation size with the input fixed.
func BenchmarkFigure8(b *testing.B) {
	for _, size := range []int{50, 200, 800} {
		w := synth.Workload{InputSize: 200, SublinkSize: size, Seed: 1}
		cat := w.Catalog()
		for _, s := range []string{"Gen", "Left", "Move", "Unn"} {
			b.Run(fmt.Sprintf("q1/sublink=%d/%s", size, s), func(b *testing.B) {
				run(b, cat, w.Q1(0), s, true)
			})
		}
	}
}

// BenchmarkFigure9 varies both relation sizes together.
func BenchmarkFigure9(b *testing.B) {
	for _, size := range []int{50, 200, 400} {
		w := synth.Workload{InputSize: size, SublinkSize: size, Seed: 1}
		cat := w.Catalog()
		for _, s := range []string{"Gen", "Left", "Move", "Unn"} {
			b.Run(fmt.Sprintf("q1/both=%d/%s", size, s), func(b *testing.B) {
				run(b, cat, w.Q1(0), s, true)
			})
		}
	}
}

// BenchmarkExtensionUnnX compares the extended unnesting strategy against
// the paper's best applicable strategy on q2 (ALL sublink), where the
// paper had to fall back to Left/Move/Gen — the future-work payoff.
func BenchmarkExtensionUnnX(b *testing.B) {
	for _, size := range []int{200, 800} {
		w := synth.Workload{InputSize: size, SublinkSize: size, Seed: 1}
		cat := w.Catalog()
		for _, s := range []string{"Move", "UnnX"} {
			b.Run(fmt.Sprintf("q2/both=%d/%s", size, s), func(b *testing.B) {
				run(b, cat, w.Q2(0), s, true)
			})
		}
	}
	// Q16's NOT IN also unnests under UnnX.
	cat, _ := tpch.Generate(tpch.Config{SF: 0.5, Seed: 1})
	q16, _ := tpch.QueryByNum(16)
	for _, s := range []string{"Left", "UnnX"} {
		b.Run("Q16/"+s, func(b *testing.B) {
			run(b, cat, q16.Instance(1), s, true)
		})
	}
}

// BenchmarkAblationOptimizer measures the contribution of the logical
// optimizer (selection pushdown + join extraction) called out in DESIGN.md:
// the same provenance plan with and without optimization.
func BenchmarkAblationOptimizer(b *testing.B) {
	w := synth.Workload{InputSize: 200, SublinkSize: 100, Seed: 1}
	cat := w.Catalog()
	for _, optimize := range []bool{true, false} {
		name := "with-optimizer"
		if !optimize {
			name = "without-optimizer"
		}
		b.Run("q1/Unn/"+name, func(b *testing.B) {
			run(b, cat, w.Q1(0), "Unn", optimize)
		})
	}
	cat2, _ := tpch.Generate(tpch.Config{SF: 0.2, Seed: 1})
	q11, _ := tpch.QueryByNum(11)
	for _, optimize := range []bool{true, false} {
		name := "with-optimizer"
		if !optimize {
			name = "without-optimizer"
		}
		b.Run("Q11/Left/"+name, func(b *testing.B) {
			run(b, cat2, q11.Instance(1), "Left", optimize)
		})
	}
}

// BenchmarkAblationHashedAny measures the hashed-subplan execution of
// uncorrelated = ANY sublinks (PostgreSQL behaviour) against the naive
// per-tuple scan — the executor design choice DESIGN.md calls out.
func BenchmarkAblationHashedAny(b *testing.B) {
	w := synth.Workload{InputSize: 500, SublinkSize: 300, Seed: 1}
	cat := w.Catalog()
	tr, err := sql.Compile(cat, w.Q1(0))
	if err != nil {
		b.Fatal(err)
	}
	plan := opt.Optimize(tr.Plan)
	for _, disable := range []bool{false, true} {
		name := "hashed"
		if disable {
			name = "scan"
		}
		b.Run(name, func(b *testing.B) {
			ev := eval.New(cat)
			ev.DisableHashedAny = disable
			for i := 0; i < b.N; i++ {
				if _, err := ev.Eval(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCorrelatedModes compares the executor modes on the correlated
// sublink workload (synth q3, bounded correlation domain): the strict
// re-evaluating executor the paper's cost model assumes, the per-binding
// sublink memo, and the parallel worker pool. The memo turns the correlated
// probe from O(outer × sublink) into O(distinct bindings × sublink); see
// also `permbench -fig modes` for the full table.
func BenchmarkCorrelatedModes(b *testing.B) {
	w := synth.Workload{InputSize: 400, SublinkSize: 400, Domain: 32, Seed: 1}
	cat := w.Catalog()
	for _, strategy := range []string{"", "Gen"} {
		stratName := strategy
		if stratName == "" {
			stratName = "baseline"
		}
		query := w.Q3(0)
		if strategy == "Gen" {
			// Gen's CrossBase makes size 400 a multi-second cell; keep the
			// default bench run fast.
			wg := synth.Workload{InputSize: 100, SublinkSize: 100, Domain: 32, Seed: 1}
			cat = wg.Catalog()
			query = wg.Q3(0)
		}
		tr, err := sql.Compile(cat, query)
		if err != nil {
			b.Fatal(err)
		}
		plan := tr.Plan
		if strategy != "" {
			res, err := rewrite.Rewrite(plan, rewrite.Gen)
			if err != nil {
				b.Fatal(err)
			}
			plan = res.Plan
		}
		plan = opt.Optimize(plan)
		for _, mode := range []struct {
			name string
			memo bool
			par  int
		}{
			{"sequential", false, 1},
			{"memo", true, 1},
			{"parallel", false, runtime.GOMAXPROCS(0)},
			{"memo+parallel", true, runtime.GOMAXPROCS(0)},
		} {
			b.Run(fmt.Sprintf("q3/%s/%s", stratName, mode.name), func(b *testing.B) {
				ev := eval.New(cat)
				ev.DisableSublinkMemo = !mode.memo
				ev.Parallelism = mode.par
				for i := 0; i < b.N; i++ {
					if _, err := ev.Eval(plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkStreamingExecutor compares the push-based streaming pipeline
// against the materializing operator-at-a-time engine on the
// EXISTS-dominated correlated workload (q4), both without the sublink memo
// — the per-binding probe cost is exactly what early termination removes.
func BenchmarkStreamingExecutor(b *testing.B) {
	w := synth.Workload{InputSize: 400, SublinkSize: 400, Domain: 32, Seed: 1}
	cat := w.Catalog()
	tr, err := sql.Compile(cat, w.Q4(0))
	if err != nil {
		b.Fatal(err)
	}
	plan := opt.Optimize(tr.Plan)
	for _, mode := range []struct {
		name        string
		materialize bool
	}{
		{"materializing", true},
		{"streaming", false},
	} {
		b.Run("q4/baseline/"+mode.name, func(b *testing.B) {
			ev := eval.New(cat)
			ev.DisableSublinkMemo = true
			ev.DisableStreaming = mode.materialize
			for i := 0; i < b.N; i++ {
				if _, err := ev.Eval(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRewriteOnly isolates the rewrite cost itself (plan construction,
// no execution) — negligible next to execution, as the paper assumes.
func BenchmarkRewriteOnly(b *testing.B) {
	cat, _ := tpch.Generate(tpch.Config{SF: 0.1, Seed: 1})
	for _, num := range []int{2, 11, 22} {
		q, err := tpch.QueryByNum(num)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := sql.Compile(cat, q.Instance(1))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Q%d/Gen", num), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rewrite.Rewrite(tr.Plan, rewrite.Gen); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

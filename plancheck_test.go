package perm

import (
	"os"
	"strings"
	"testing"
)

// TestMain turns per-stage plan verification strict for the whole root
// test suite: every query of the regression, differential, view and
// example tests now fails if any compile stage produces a structurally
// invalid plan, making the entire suite a plancheck fixture for free.
func TestMain(m *testing.M) {
	DefaultPlanCheck = PlanCheckStrict
	os.Exit(m.Run())
}

func TestPlanCheckModeFlagRoundTrip(t *testing.T) {
	for _, mode := range []PlanCheckMode{PlanCheckOff, PlanCheckLog, PlanCheckStrict} {
		got, err := ParsePlanCheckMode(mode.String())
		if err != nil || got != mode {
			t.Fatalf("ParsePlanCheckMode(%q) = %v, %v", mode.String(), got, err)
		}
	}
	if _, err := ParsePlanCheckMode("nope"); err == nil {
		t.Fatal("ParsePlanCheckMode accepted an unknown spelling")
	}
}

func TestPlanCheckStrictCleanQuery(t *testing.T) {
	db := openFigure3(t)
	res, err := db.Query("SELECT PROVENANCE a, b FROM r WHERE a = ANY (SELECT c FROM s)",
		WithPlanCheck(PlanCheckStrict))
	if err != nil {
		t.Fatalf("strict plancheck rejected a clean query: %v", err)
	}
	for _, f := range res.PlanFindings {
		if !f.Advisory {
			t.Errorf("clean query carries finding: %s", f)
		}
	}
}

func TestVerifyPlanStages(t *testing.T) {
	db := openFigure3(t)
	stages, err := db.VerifyPlan("SELECT PROVENANCE a, b FROM r WHERE a = ANY (SELECT c FROM s)",
		WithStrategy(Gen))
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) < 3 {
		t.Fatalf("want translate + rules + rewrite + optimize, got %d stages: %+v", len(stages), stages)
	}
	if stages[0].Stage != "translate" {
		t.Errorf("first stage = %q, want translate", stages[0].Stage)
	}
	if last := stages[len(stages)-1].Stage; last != "optimize" {
		t.Errorf("last stage = %q, want optimize", last)
	}
	var sawRule, sawRewrite bool
	for _, st := range stages {
		if strings.HasPrefix(st.Stage, "rule/") {
			sawRule = true
		}
		if st.Stage == "rewrite/Gen" {
			sawRewrite = true
		}
		for _, f := range st.Findings {
			if !f.Advisory {
				t.Errorf("%s: %s", st.Stage, f)
			}
		}
	}
	if !sawRule || !sawRewrite {
		t.Errorf("stage list misses rule/rewrite stages: %+v", stages)
	}
}

func TestVerifyPlanPlainQuery(t *testing.T) {
	db := openFigure3(t)
	stages, err := db.VerifyPlan("SELECT a FROM r ORDER BY b")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"translate", "optimize"}
	if len(stages) != len(want) {
		t.Fatalf("stages = %+v, want %v", stages, want)
	}
	for i, st := range stages {
		if st.Stage != want[i] {
			t.Errorf("stage %d = %q, want %q", i, st.Stage, want[i])
		}
		if len(st.Findings) != 0 {
			t.Errorf("%s: findings on a clean plain query: %+v", st.Stage, st.Findings)
		}
	}
}

func TestVerifyPlanSessionView(t *testing.T) {
	db := openFigure3(t)
	s := db.NewSession()
	if _, err := s.Exec("CREATE VIEW big AS SELECT a, b FROM r WHERE a >= 2"); err != nil {
		t.Fatal(err)
	}
	stages, err := s.VerifyPlan("SELECT PROVENANCE a FROM big")
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stages {
		for _, f := range st.Findings {
			if !f.Advisory {
				t.Errorf("%s: %s", st.Stage, f)
			}
		}
	}
}

func TestPlanFindingString(t *testing.T) {
	f := PlanFinding{Stage: "translate", Check: "schema", Path: "Scan(r)", Message: "boom"}
	if got, want := f.String(), "translate: schema at Scan(r): boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

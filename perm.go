// Package perm is a pure-Go reproduction of the Perm provenance management
// system as extended by Glavic & Alonso, "Provenance for Nested Subqueries"
// (EDBT 2009): a relational engine that computes the Why-provenance of SQL
// queries — including correlated and nested subqueries (sublinks) — purely
// by query rewriting.
//
// A DB is an in-memory database. Queries use a SQL subset with the Perm
// language extension SELECT PROVENANCE, which returns every result tuple
// extended with the contributing tuples of each base relation:
//
//	db := perm.Open()
//	db.Register("r", []string{"a", "b"}, [][]any{{1, 1}, {2, 1}, {3, 2}})
//	db.Register("s", []string{"c"}, [][]any{{1}, {2}})
//	res, err := db.Query(`SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s)`)
//
// The rewrite strategy (Gen, Left, Move, Unn or Auto — see the package
// documentation of internal/rewrite and §3 of the paper) is selectable per
// query with WithStrategy.
//
// The executor memoizes correlated sublink results per parameter binding
// and can evaluate tuple-independent work on a bounded worker pool — see
// WithParallelism and the package documentation of internal/eval.
package perm

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/eval"
	"perm/internal/rel"
	"perm/internal/rewrite"
	"perm/internal/schema"
	"perm/internal/sql"
	"perm/internal/types"
)

// Strategy selects the sublink rewrite strategy for provenance queries.
type Strategy string

// The rewrite strategies of the paper. Auto picks Unn where its patterns
// match, then UnnX (including its decorrelation of equality-correlated
// EXISTS), then Move for uncorrelated sublinks, then Gen.
const (
	Gen  Strategy = "Gen"
	Left Strategy = "Left"
	Move Strategy = "Move"
	Unn  Strategy = "Unn"
	// UnnX extends Unn to ALL, negated and scalar sublinks — this
	// reproduction's implementation of the paper's future-work unnesting
	// direction.
	UnnX Strategy = "UnnX"
	Auto Strategy = "Auto"
)

func (s Strategy) internal() (rewrite.Strategy, error) {
	return rewrite.ParseStrategy(string(s))
}

// DB is an in-memory database with provenance support. Queries may run
// concurrently with each other and with view DDL: the views map is
// replaced wholesale under viewMu (never mutated in place), so a query
// either sees a view completely — with its body already analyzed — or not
// at all.
type DB struct {
	cat    *catalog.Catalog
	viewMu sync.RWMutex
	// views is the published views map, replaced wholesale on DDL.
	// guarded-by: viewMu
	views map[string]*sql.ViewDef
}

// Open returns an empty database.
func Open() *DB { return &DB{cat: catalog.New(), views: map[string]*sql.ViewDef{}} }

// Exec runs any statement: SELECT queries return a Result; CREATE VIEW and
// DROP VIEW return nil. Views are stored queries that may be used like
// relations — including under SELECT PROVENANCE, which rewrites through
// the view body (the Perm capability of §3.1).
func (db *DB) Exec(statement string, opts ...Option) (*Result, error) {
	st, err := sql.ParseStatement(statement)
	if err != nil {
		return nil, err
	}
	switch {
	case st.CreateView != nil:
		name := st.CreateView.Name
		// Validate the body now so errors surface at definition time. The
		// whole snapshot–validate–publish sequence holds viewMu, so
		// concurrent DDL serializes (no lost views) and the probe compiles
		// against a private map BEFORE the view is published: analysis
		// substitutes any ordinals in the body in place, and publishing only
		// afterwards guarantees concurrent queries never see (or race with)
		// that one-time write (see sql.Analyze). In-flight queries keep the
		// map they snapshotted; only new snapshots wait out the validation.
		db.viewMu.Lock()
		defer db.viewMu.Unlock()
		probe := cloneViews(db.views)
		probe[name] = st.CreateView
		if _, err := sql.CompileEnv(sql.Env{Catalog: db.cat, Views: probe}, "SELECT * FROM "+name); err != nil {
			return nil, err
		}
		db.views = probe
		return nil, nil
	case st.DropView != "":
		db.viewMu.Lock()
		defer db.viewMu.Unlock()
		if _, ok := db.views[st.DropView]; !ok {
			return nil, fmt.Errorf("perm: unknown view %q", st.DropView)
		}
		// Replace, never mutate: concurrent queries may hold the old map.
		next := cloneViews(db.views)
		delete(next, st.DropView)
		db.views = next
		return nil, nil
	case st.CreateTable != nil:
		if db.cat.Has(st.CreateTable.Name) {
			return nil, fmt.Errorf("perm: relation %q already exists", st.CreateTable.Name)
		}
		r, kinds := tableDefRelation(st.CreateTable)
		db.cat.RegisterWithKinds(st.CreateTable.Name, r, kinds)
		return nil, nil
	case st.Insert != nil:
		old, err := db.cat.Relation(st.Insert.Table)
		if err != nil {
			return nil, err
		}
		kinds, err := db.cat.Kinds(st.Insert.Table)
		if err != nil {
			return nil, err
		}
		next, merged, err := appendRows(old, kinds, st.Insert)
		if err != nil {
			return nil, err
		}
		db.cat.RegisterWithKinds(st.Insert.Table, next, merged)
		return nil, nil
	case st.DropTable != "":
		if !db.cat.Has(st.DropTable) {
			return nil, fmt.Errorf("perm: unknown relation %q", st.DropTable)
		}
		db.cat.Drop(st.DropTable)
		return nil, nil
	default:
		return db.Query(statement, opts...)
	}
}

// tableDefRelation materializes a CREATE TABLE definition: an empty
// relation plus the declared column kinds (which inference could never
// recover from zero rows).
func tableDefRelation(def *sql.TableDef) (*rel.Relation, []types.Kind) {
	cols := make([]string, len(def.Cols))
	kinds := make([]types.Kind, len(def.Cols))
	for i, c := range def.Cols {
		cols[i] = c.Name
		kinds[i] = c.Kind
	}
	return rel.New(schema.New("", cols...)), kinds
}

// appendRows builds the next copy-on-write version of a relation with an
// INSERT's rows appended, type-checking values against the column kinds
// and widening unknown (all-NULL) columns to the kinds the new values
// establish. The old relation is never mutated: snapshots that hold it
// keep observing the pre-INSERT state.
func appendRows(old *rel.Relation, kinds []types.Kind, ins *sql.InsertStmt) (*rel.Relation, []types.Kind, error) {
	cols := make([]string, old.Schema.Len())
	for i, a := range old.Schema.Attrs {
		cols[i] = a.Name
	}
	if err := sql.CheckInsertKinds(ins, cols, kinds); err != nil {
		return nil, nil, err
	}
	merged := make([]types.Kind, len(kinds))
	copy(merged, kinds)
	next := old.Clone()
	for _, row := range ins.Rows {
		t := make(rel.Tuple, len(row))
		copy(t, row)
		next.Add(t, 1)
		for j, v := range row {
			if j < len(merged) && merged[j] == types.KindNull && v.Kind() != types.KindNull {
				merged[j] = v.Kind()
			}
		}
	}
	return next, merged, nil
}

// CreateView stores a named query.
func (db *DB) CreateView(name, query string) error {
	_, err := db.Exec(fmt.Sprintf("CREATE VIEW %s AS %s", name, query))
	return err
}

// Views lists the defined view names.
func (db *DB) Views() []string {
	views := db.snapshotViews()
	out := make([]string, 0, len(views))
	for n := range views {
		out = append(out, n)
	}
	sortStrings(out)
	return out
}

// snapshotViews returns the current published views map. The map is
// replaced wholesale on DDL and never mutated in place, so holding the
// returned reference across a whole compile is safe.
func (db *DB) snapshotViews() map[string]*sql.ViewDef {
	db.viewMu.RLock()
	defer db.viewMu.RUnlock()
	return db.views
}

func cloneViews(in map[string]*sql.ViewDef) map[string]*sql.ViewDef {
	out := make(map[string]*sql.ViewDef, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Register installs a base relation. Row values may be int, int64,
// float64, string, bool or nil (NULL).
func (db *DB) Register(name string, columns []string, rows [][]any) error {
	r, err := buildRelation(columns, rows)
	if err != nil {
		return err
	}
	db.cat.Register(name, r)
	return nil
}

// buildRelation converts Go values into a relation (shared by DB.Register
// and Session.Register).
func buildRelation(columns []string, rows [][]any) (*rel.Relation, error) {
	r := rel.New(schema.New("", columns...))
	for i, row := range rows {
		if len(row) != len(columns) {
			return nil, fmt.Errorf("perm: row %d has %d values, want %d", i, len(row), len(columns))
		}
		t := make(rel.Tuple, len(row))
		for j, v := range row {
			val, err := toValue(v)
			if err != nil {
				return nil, fmt.Errorf("perm: row %d column %q: %w", i, columns[j], err)
			}
			t[j] = val
		}
		r.Add(t, 1)
	}
	return r, nil
}

// LoadCSV installs a base relation from CSV (header row of column names;
// values type-inferred; "NULL" and empty fields become NULL).
func (db *DB) LoadCSV(name string, r io.Reader) error {
	relation, err := catalog.ReadCSV(r)
	if err != nil {
		return err
	}
	db.cat.Register(name, relation)
	return nil
}

// Relations lists the registered relation names.
func (db *DB) Relations() []string { return db.cat.Names() }

// Drop removes a relation.
func (db *DB) Drop(name string) { db.cat.Drop(name) }

// Catalog exposes the underlying catalog for tools inside this module.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

func toValue(v any) (types.Value, error) {
	switch x := v.(type) {
	case nil:
		return types.Null(), nil
	case int:
		return types.NewInt(int64(x)), nil
	case int64:
		return types.NewInt(x), nil
	case float64:
		return types.NewFloat(x), nil
	case string:
		return types.NewString(x), nil
	case bool:
		return types.NewBool(x), nil
	default:
		return types.Null(), fmt.Errorf("unsupported value type %T", v)
	}
}

func fromValue(v types.Value) any {
	switch v.Kind() {
	case types.KindNull:
		return nil
	case types.KindBool:
		return v.Bool()
	case types.KindInt:
		return v.Int()
	case types.KindFloat:
		return v.Float()
	case types.KindString:
		return v.Str()
	default:
		return nil
	}
}

// Option configures one Query call.
type Option func(*queryConfig)

type queryConfig struct {
	strategy    Strategy
	ctx         context.Context
	noOptimize  bool
	parallelism int
	materialize bool
	planCheck   PlanCheckMode
}

// WithStrategy selects the sublink rewrite strategy for PROVENANCE queries
// (default Auto).
func WithStrategy(s Strategy) Option {
	return func(c *queryConfig) { c.strategy = s }
}

// WithContext attaches a context; cancellation aborts evaluation.
func WithContext(ctx context.Context) Option {
	return func(c *queryConfig) { c.ctx = ctx }
}

// WithParallelism lets the executor use up to n worker goroutines for one
// query: tuple-independent work — sublink probes in selections and
// projections, hash-join builds and probes, aggregate input evaluation —
// fans out across the pool. n <= 1 evaluates sequentially (the default).
// Results are identical to sequential execution regardless of n; a natural
// choice is runtime.GOMAXPROCS(0).
func WithParallelism(n int) Option {
	return func(c *queryConfig) { c.parallelism = n }
}

// WithoutOptimizer disables the logical optimizer — for ablation
// experiments that measure the raw rewritten plans.
func WithoutOptimizer() Option {
	return func(c *queryConfig) { c.noOptimize = true }
}

// WithoutStreaming switches the query to the materializing
// operator-at-a-time executor (every operator's output built as a full
// counted bag). The default streaming pipeline produces identical result
// bags; this knob exists for ablation runs and the benchmark harness's
// streaming-vs-materializing comparison.
func WithoutStreaming() Option {
	return func(c *queryConfig) { c.materialize = true }
}

// ProvGroup describes the provenance columns contributed by one base
// relation access of a PROVENANCE query.
type ProvGroup struct {
	// Relation is the base relation name.
	Relation string
	// Columns are the provenance column names, in result order.
	Columns []string
}

// Result is a materialized query result.
type Result struct {
	// Columns are all result column names; for PROVENANCE queries the
	// original query's columns come first, provenance columns after.
	Columns []string
	// Rows hold the data in deterministic order (the query's ORDER BY when
	// present, a canonical order otherwise). Values are int64, float64,
	// string, bool or nil.
	Rows [][]any
	// DataColumns is the number of original (non-provenance) columns.
	DataColumns int
	// Provenance describes the provenance column groups (empty for plain
	// queries).
	Provenance []ProvGroup
	// PeakRows is the executor's high-water mark of resident rows for this
	// query (see eval.Stats) — the service layer's /stats endpoint
	// aggregates it.
	PeakRows int64
	// PlanFindings are the per-stage plan-verifier findings recorded under
	// WithPlanCheck(PlanCheckLog); empty when verification is off or clean.
	PlanFindings []PlanFinding
}

// snapshot is one consistent (catalog, views) state that a single
// statement compiles and executes against. DB statements snapshot the base
// catalog and the published views map; Session statements snapshot their
// copy-on-write overlay — either way the whole pipeline (parse, analyze,
// translate, rewrite, optimize, evaluate) observes exactly one catalog
// state, unaffected by concurrent DDL.
type snapshot struct {
	src   catalog.Source
	views map[string]*sql.ViewDef
}

func (sn snapshot) env() sql.Env { return sql.Env{Catalog: sn.src, Views: sn.views} }

func (db *DB) snapshot() snapshot { return snapshot{src: db.cat, views: db.snapshotViews()} }

func newQueryConfig(opts []Option) queryConfig {
	// cfg.ctx stays nil unless WithContext supplies one: a bare Query call
	// is not cancelable, and the evaluator treats a nil context as "never
	// canceled" rather than minting a root context here.
	cfg := queryConfig{strategy: Auto, planCheck: DefaultPlanCheck}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Query parses, plans and executes a SQL statement. SELECT PROVENANCE
// statements are rewritten with the configured strategy before execution.
func (db *DB) Query(query string, opts ...Option) (*Result, error) {
	return db.snapshot().query(query, newQueryConfig(opts))
}

// QueryContext is Query under a context: cancellation or deadline expiry
// aborts evaluation with an error wrapping eval.ErrCanceled and the
// context's error. It is equivalent to passing WithContext(ctx).
func (db *DB) QueryContext(ctx context.Context, query string, opts ...Option) (*Result, error) {
	return db.Query(query, append([]Option{WithContext(ctx)}, opts...)...)
}

// ExecContext is Exec under a context (see QueryContext).
func (db *DB) ExecContext(ctx context.Context, statement string, opts ...Option) (*Result, error) {
	return db.Exec(statement, append([]Option{WithContext(ctx)}, opts...)...)
}

// query runs the full pipeline against one snapshot.
func (sn snapshot) query(query string, cfg queryConfig) (*Result, error) {
	p, err := sn.compile(query, cfg)
	if err != nil {
		return nil, err
	}
	tr, plan := p.tr, p.plan
	out := &Result{PlanFindings: p.findings}
	if res := p.res; res != nil {
		out.DataColumns = res.Original.Len() - tr.Hidden
		for _, p := range res.Prov {
			g := ProvGroup{Relation: p.Rel}
			for _, a := range p.Attrs {
				g.Columns = append(g.Columns, a.Name)
			}
			out.Provenance = append(out.Provenance, g)
		}
	}
	ev := eval.New(sn.src)
	if cfg.ctx != nil {
		ev = ev.WithContext(cfg.ctx)
	}
	ev.Parallelism = cfg.parallelism
	ev.DisableStreaming = cfg.materialize
	relOut, err := ev.Eval(plan)
	if err != nil {
		return nil, err
	}
	out.PeakRows = ev.LastStats().PeakRows
	if !tr.Provenance {
		out.DataColumns = relOut.Schema.Len() - tr.Hidden
	}
	// Hidden ORDER BY key columns (Translated.Hidden) sit between the
	// visible data columns and any provenance columns. They exist so the
	// sort below can evaluate keys the SELECT list does not project; they
	// are stripped from the presented result.
	hiddenStart, hiddenEnd := out.DataColumns, out.DataColumns+tr.Hidden
	for i, a := range relOut.Schema.Attrs {
		if i >= hiddenStart && i < hiddenEnd {
			continue
		}
		out.Columns = append(out.Columns, a.Name)
	}
	tuples, err := orderedTuples(plan, relOut)
	if err != nil {
		return nil, err
	}
	for _, t := range tuples {
		row := make([]any, 0, len(t)-tr.Hidden)
		for i, v := range t {
			if i >= hiddenStart && i < hiddenEnd {
				continue
			}
			row = append(row, fromValue(v))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// StrategyAdvice is the cost model's estimate for one strategy.
type StrategyAdvice struct {
	// Strategy is the rewrite strategy being estimated.
	Strategy Strategy
	// Applicable reports whether the strategy can rewrite this query.
	Applicable bool
	// Cost is a unitless work estimate; lower is better. Comparable only
	// across strategies for the same query.
	Cost float64
	// Reason names the dominant cost term, or why the strategy is
	// inapplicable.
	Reason string
}

// Advise ranks the rewrite strategies for a query using a provenance-aware
// cost model over the catalog's relation cardinalities (the paper's
// future-work direction of making the optimizer cost model
// provenance-aware). The query must not use the PROVENANCE keyword — pass
// the plain query you intend to ask provenance for.
func (db *DB) Advise(query string) ([]StrategyAdvice, error) {
	return db.snapshot().advise(query)
}

func (sn snapshot) advise(query string) ([]StrategyAdvice, error) {
	tr, err := sql.CompileEnv(sn.env(), query)
	if err != nil {
		return nil, err
	}
	if tr.Provenance {
		return nil, fmt.Errorf("perm: Advise takes the plain query, without PROVENANCE")
	}
	stats := rewrite.StatsFunc(func(rel string) int {
		r, err := sn.src.Relation(rel)
		if err != nil {
			return 1000
		}
		return r.Card()
	})
	var out []StrategyAdvice
	for _, a := range rewrite.Advise(tr.Plan, stats) {
		out = append(out, StrategyAdvice{
			Strategy:   Strategy(a.Strategy.String()),
			Applicable: a.Applicable,
			Cost:       a.Cost,
			Reason:     a.Reason,
		})
	}
	return out, nil
}

// Explain returns the (optimized) algebra plan of a statement, after the
// provenance rewrite for PROVENANCE queries.
func (db *DB) Explain(query string, opts ...Option) (string, error) {
	return db.snapshot().explain(query, newQueryConfig(opts))
}

func (sn snapshot) explain(query string, cfg queryConfig) (string, error) {
	p, err := sn.compile(query, cfg)
	if err != nil {
		return "", err
	}
	return algebra.Indent(p.plan), nil
}

// orderedTuples respects the query's ORDER BY; otherwise it returns the
// canonical sorted order for deterministic output. A sort-key evaluation
// failure is the query's failure — it must surface, not silently degrade
// to the canonical order.
func orderedTuples(plan algebra.Op, out *rel.Relation) ([]rel.Tuple, error) {
	// The executor returns bags; re-sort explicitly by whatever order
	// reaches the plan's output — including an inner ORDER BY carried
	// through derived-table projection wrappers and LIMIT, and hidden
	// sort-key columns extended onto the projection by the translator.
	keys := algebra.LiftOrderKeys(plan)
	if keys == nil {
		return out.SortedTuples(), nil
	}
	return eval.SortTuples(out, keys)
}

// FormatTable renders the result as an aligned text table for CLI output.
func (r *Result) FormatTable() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	cell := func(v any) string {
		if v == nil {
			return "NULL"
		}
		return fmt.Sprintf("%v", v)
	}
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, v := range row {
			if l := len(cell(v)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = cell(v)
		}
		writeRow(cells)
	}
	return b.String()
}

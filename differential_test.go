package perm

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"perm/internal/rewrite"
	"perm/internal/synth"
)

// --- ORDER BY / OFFSET regression tests (fail on the pre-PR engine) ---

func openAsc(t *testing.T) *DB {
	t.Helper()
	db := Open()
	if err := db.Register("r", []string{"a"}, [][]any{{1}, {2}, {3}}); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestDerivedTableOrderBySurvivesLimit: the derived table's ORDER BY must
// reach the outer LIMIT and the presentation order, as in PostgreSQL. The
// pre-PR engine silently dropped it and returned 1, 2.
func TestDerivedTableOrderBySurvivesLimit(t *testing.T) {
	db := openAsc(t)
	res, err := db.Query(`SELECT a FROM (SELECT a FROM r ORDER BY a DESC) t LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != int64(3) || res.Rows[1][0] != int64(2) {
		t.Fatalf("rows = %v, want [[3] [2]]", res.Rows)
	}
}

// TestDerivedTableOrderByUnprojectedKey: the LIMIT cut must honour an
// inner ORDER BY even when the outer SELECT list drops the ordering column
// — the optimizer pushes the limit below the projection to where the key
// is still visible. (The bag executor cannot also *present* rows by a
// projected-away column, so only the selected set is asserted.)
func TestDerivedTableOrderByUnprojectedKey(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 10}, {2, 20}, {3, 30}}); err != nil {
		t.Fatal(err)
	}
	// The cut lives in the executor (algebra.PushLimit), so it must hold
	// with and without the optional optimizer.
	for _, opts := range [][]Option{nil, {WithoutOptimizer()}, {WithoutStreaming()}} {
		res, err := db.Query(`SELECT a FROM (SELECT a, b FROM r ORDER BY b DESC) t LIMIT 2`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		got := map[int64]bool{}
		for _, row := range res.Rows {
			got[row[0].(int64)] = true
		}
		if len(res.Rows) != 2 || !got[3] || !got[2] {
			t.Fatalf("opts %d: rows = %v, want the b-DESC top 2 (a=3 and a=2)", len(opts), res.Rows)
		}
	}
}

// TestDerivedTableOrderByThroughWhere: a filter between the derived
// table's ORDER BY and the LIMIT preserves the surviving rows' order.
func TestDerivedTableOrderByThroughWhere(t *testing.T) {
	db := openAsc(t)
	res, err := db.Query(`SELECT a FROM (SELECT a FROM r ORDER BY a DESC) t WHERE a < 3 LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(2) {
		t.Fatalf("rows = %v, want [[2]]", res.Rows)
	}
}

// TestDerivedTableOrderByExpressionKey: an expression sort key whose
// attribute references all pass through the projection wrappers keeps
// ordering the output.
func TestDerivedTableOrderByExpressionKey(t *testing.T) {
	db := openAsc(t)
	res, err := db.Query(`SELECT a FROM (SELECT a FROM r ORDER BY a + 0 DESC) t LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != int64(3) || res.Rows[1][0] != int64(2) {
		t.Fatalf("rows = %v, want [[3] [2]]", res.Rows)
	}
}

// TestOffsetEndToEnd: LIMIT n OFFSET m — and OFFSET without LIMIT — must
// parse, translate and execute. The pre-PR parser failed with "unexpected
// offset after end of statement".
func TestOffsetEndToEnd(t *testing.T) {
	db := openAsc(t)
	for _, tc := range []struct {
		q    string
		want []int64
	}{
		{`SELECT a FROM r ORDER BY a LIMIT 1 OFFSET 1`, []int64{2}},
		{`SELECT a FROM r ORDER BY a OFFSET 2`, []int64{3}},
		{`SELECT a FROM r ORDER BY a DESC LIMIT 2 OFFSET 1`, []int64{2, 1}},
		{`SELECT a FROM r ORDER BY a OFFSET 0`, []int64{1, 2, 3}},
		{`SELECT a FROM r ORDER BY a LIMIT 2 OFFSET 5`, nil},
	} {
		res, err := db.Query(tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.q, err)
		}
		var got []int64
		for _, row := range res.Rows {
			got = append(got, row[0].(int64))
		}
		if len(got) != len(tc.want) {
			t.Fatalf("%s: rows %v, want %v", tc.q, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%s: rows %v, want %v", tc.q, got, tc.want)
			}
		}
	}
}

// --- cross-strategy, cross-executor differential harness ---

// diffModes are the executor configurations every strategy must agree
// across: the streaming pipeline and the materializing engine, sequential
// and fanned out.
var diffModes = []struct {
	name string
	opts []Option
}{
	{"stream/seq", nil},
	{"stream/par4", []Option{WithParallelism(4)}},
	{"mat/seq", []Option{WithoutStreaming()}},
	{"mat/par4", []Option{WithoutStreaming(), WithParallelism(4)}},
}

var diffStrategies = []Strategy{Gen, Left, Move, Unn, UnnX, Auto}

// rowsFingerprint canonicalizes a result's bag of rows for comparison.
func rowsFingerprint(res *Result) string {
	lines := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = fmt.Sprintf("%v", v)
		}
		lines[i] = strings.Join(parts, "|")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// checkDifferential runs one provenance query under every applicable
// strategy and executor mode and asserts every combination returns the
// identical provenance bag.
func checkDifferential(t *testing.T, db *DB, query string) {
	t.Helper()
	haveRef := false
	ref, refLabel := "", ""
	for _, s := range diffStrategies {
		for _, mode := range diffModes {
			opts := append([]Option{WithStrategy(s)}, mode.opts...)
			res, err := db.Query(query, opts...)
			if errors.Is(err, rewrite.ErrNotApplicable) {
				break // inapplicable regardless of executor mode
			}
			if err != nil {
				t.Fatalf("%s/%s on %q: %v", s, mode.name, query, err)
			}
			fp := rowsFingerprint(res)
			if !haveRef {
				haveRef, ref, refLabel = true, fp, fmt.Sprintf("%s/%s", s, mode.name)
			} else if fp != ref {
				t.Errorf("%s/%s disagrees with %s on %q:\n<<< %s\n>>> %s",
					s, mode.name, refLabel, query, ref, fp)
			}
		}
	}
	if !haveRef {
		t.Fatalf("no strategy applied to %q", query)
	}
}

// TestDifferentialCurated covers the curated sublink shapes over the
// Figure 3 relations.
func TestDifferentialCurated(t *testing.T) {
	db := Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 1}, {2, 1}, {3, 2}, {3, 2}, {nil, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("s", []string{"c", "d"}, [][]any{{1, 3}, {2, 4}, {4, 5}, {nil, 1}}); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`SELECT PROVENANCE a, b FROM r WHERE a = ANY (SELECT c FROM s)`,
		`SELECT PROVENANCE a FROM r WHERE a < ALL (SELECT c FROM s WHERE c > 1)`,
		`SELECT PROVENANCE a FROM r WHERE EXISTS (SELECT c FROM s WHERE c > 2)`,
		`SELECT PROVENANCE a FROM r WHERE EXISTS (SELECT c FROM s WHERE c = b)`,
		`SELECT PROVENANCE a FROM r WHERE NOT EXISTS (SELECT c FROM s WHERE c = 9)`,
		`SELECT PROVENANCE a FROM r WHERE a > (SELECT min(c) FROM s)`,
		`SELECT PROVENANCE a FROM r WHERE a IN (SELECT c FROM s WHERE d > b)`,
		`SELECT PROVENANCE b, count(*) AS n FROM r GROUP BY b`,
	} {
		checkDifferential(t, db, q)
	}
}

// TestDifferentialSynth runs the harness over the synthetic workload,
// including the correlated queries q3/q4 behind the executor comparisons.
func TestDifferentialSynth(t *testing.T) {
	w := synth.Workload{InputSize: 60, SublinkSize: 40, Domain: 6, Seed: 11}
	cat := w.Catalog()
	db := Open()
	for _, name := range cat.Names() {
		r, err := cat.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		db.Catalog().Register(name, r)
	}
	for _, q := range []string{w.Q1(0), w.Q2(0), w.Q3(0), w.Q4(0)} {
		checkDifferential(t, db, "SELECT PROVENANCE"+strings.TrimPrefix(q, "SELECT"))
	}
}

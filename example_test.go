package perm_test

import (
	"fmt"
	"log"

	"perm"
)

// Example reproduces query q1 of the paper's Figure 3: the provenance of a
// selection with an ANY sublink.
func Example() {
	db := perm.Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 1}, {2, 1}, {3, 2}}); err != nil {
		log.Fatal(err)
	}
	if err := db.Register("s", []string{"c", "d"}, [][]any{{1, 3}, {2, 4}, {4, 5}}); err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(`SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s)`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row)
	}
	// Output:
	// [1 1 1 1 1 3]
	// [2 1 2 1 2 4]
}

// ExampleDB_Query_strategy selects a specific rewrite strategy and shows
// that the restricted strategies refuse correlated sublinks.
func ExampleDB_Query_strategy() {
	db := perm.Open()
	_ = db.Register("r", []string{"a", "b"}, [][]any{{1, 1}})
	_ = db.Register("s", []string{"c"}, [][]any{{1}})

	correlated := `SELECT PROVENANCE a FROM r WHERE a = ANY (SELECT c FROM s WHERE c = b)`
	if _, err := db.Query(correlated, perm.WithStrategy(perm.Left)); err != nil {
		fmt.Println("Left refuses correlated sublinks")
	}
	res, err := db.Query(correlated, perm.WithStrategy(perm.Gen))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Rows), "provenance row(s) under Gen")
	// Output:
	// Left refuses correlated sublinks
	// 1 provenance row(s) under Gen
}

// ExampleDB_Advise ranks the strategies with the provenance-aware cost
// model before running anything.
func ExampleDB_Advise() {
	db := perm.Open()
	_ = db.Register("r", []string{"a"}, [][]any{{1}, {2}})
	_ = db.Register("s", []string{"c"}, [][]any{{2}})

	advice, err := db.Advise(`SELECT a FROM r WHERE a = ANY (SELECT c FROM s)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cheapest:", advice[0].Strategy)
	fmt.Println("most expensive applicable:", advice[len(advice)-1].Strategy)
	// Output:
	// cheapest: Unn
	// most expensive applicable: Gen
}

// ExampleDB_Exec_views stores a query as a view and asks for provenance
// through it; the provenance traces to the base relations behind the view.
func ExampleDB_Exec_views() {
	db := perm.Open()
	_ = db.Register("r", []string{"a", "b"}, [][]any{{1, 1}, {2, 1}, {3, 2}})
	if _, err := db.Exec(`CREATE VIEW small AS SELECT a, b FROM r WHERE a <= 2`); err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(`SELECT PROVENANCE a FROM small ORDER BY a`)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range res.Provenance {
		fmt.Println("source:", g.Relation)
	}
	fmt.Println("rows:", len(res.Rows))
	// Output:
	// source: r
	// rows: 2
}

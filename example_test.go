package perm_test

import (
	"fmt"
	"log"
	"runtime"

	"perm"
)

// Example reproduces query q1 of the paper's Figure 3: the provenance of a
// selection with an ANY sublink.
func Example() {
	db := perm.Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 1}, {2, 1}, {3, 2}}); err != nil {
		log.Fatal(err)
	}
	if err := db.Register("s", []string{"c", "d"}, [][]any{{1, 3}, {2, 4}, {4, 5}}); err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(`SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s)`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row)
	}
	// Output:
	// [1 1 1 1 1 3]
	// [2 1 2 1 2 4]
}

// ExampleDB_Query_strategy selects a specific rewrite strategy and shows
// that the restricted strategies refuse correlated sublinks.
func ExampleDB_Query_strategy() {
	db := perm.Open()
	_ = db.Register("r", []string{"a", "b"}, [][]any{{1, 1}})
	_ = db.Register("s", []string{"c"}, [][]any{{1}})

	correlated := `SELECT PROVENANCE a FROM r WHERE a = ANY (SELECT c FROM s WHERE c = b)`
	if _, err := db.Query(correlated, perm.WithStrategy(perm.Left)); err != nil {
		fmt.Println("Left refuses correlated sublinks")
	}
	res, err := db.Query(correlated, perm.WithStrategy(perm.Gen))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Rows), "provenance row(s) under Gen")
	// Output:
	// Left refuses correlated sublinks
	// 1 provenance row(s) under Gen
}

// figure3 loads the R and S of the paper's Figure 3.
func figure3() *perm.DB {
	db := perm.Open()
	_ = db.Register("r", []string{"a", "b"}, [][]any{{1, 1}, {2, 1}, {3, 2}})
	_ = db.Register("s", []string{"c", "d"}, [][]any{{1, 3}, {2, 4}, {4, 5}})
	return db
}

// ExampleWithStrategy_gen: the Gen strategy (rules G1/G2) rewrites every
// sublink, including this correlated one, by joining against the
// null-extended sublink base relations.
func ExampleWithStrategy_gen() {
	db := figure3()
	res, err := db.Query(`SELECT PROVENANCE a FROM r WHERE EXISTS (SELECT c FROM s WHERE c = b)`,
		perm.WithStrategy(perm.Gen))
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row)
	}
	// Output:
	// [1 1 1 1 3]
	// [2 2 1 1 3]
	// [3 3 2 2 4]
}

// ExampleWithStrategy_left: the Left strategy (rules L1/L2) left outer
// joins the rewritten sublink query; it refuses correlated sublinks.
func ExampleWithStrategy_left() {
	db := figure3()
	res, err := db.Query(`SELECT PROVENANCE a FROM r WHERE a = ANY (SELECT c FROM s)`,
		perm.WithStrategy(perm.Left))
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row)
	}
	// Output:
	// [1 1 1 1 3]
	// [2 2 1 2 4]
}

// ExampleWithStrategy_move: the Move strategy (rules T1/T2) computes the
// sublink once in a projection and reuses its value in the join condition.
func ExampleWithStrategy_move() {
	db := figure3()
	res, err := db.Query(`SELECT PROVENANCE a FROM r WHERE a = ANY (SELECT c FROM s)`,
		perm.WithStrategy(perm.Move))
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row)
	}
	// Output:
	// [1 1 1 1 3]
	// [2 2 1 2 4]
}

// ExampleWithStrategy_unn: the Unn strategy (rules U1/U2) unnests the
// equality-ANY sublink into a plain equi-join — the paper's fastest
// strategy where its patterns match.
func ExampleWithStrategy_unn() {
	db := figure3()
	res, err := db.Query(`SELECT PROVENANCE a FROM r WHERE a = ANY (SELECT c FROM s)`,
		perm.WithStrategy(perm.Unn))
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row)
	}
	// Output:
	// [1 1 1 1 3]
	// [2 2 1 2 4]
}

// ExampleWithStrategy_unnX: UnnX extends unnesting to ALL, negated and
// scalar sublinks (the paper's future-work direction); Unn itself has no
// rule for this ALL sublink.
func ExampleWithStrategy_unnX() {
	db := figure3()
	query := `SELECT PROVENANCE a FROM r WHERE a < ALL (SELECT c FROM s WHERE c > 3)`
	if _, err := db.Query(query, perm.WithStrategy(perm.Unn)); err != nil {
		fmt.Println("Unn has no rule for ALL sublinks")
	}
	res, err := db.Query(query, perm.WithStrategy(perm.UnnX))
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row)
	}
	// Output:
	// Unn has no rule for ALL sublinks
	// [1 1 1 4 5]
	// [2 2 1 4 5]
	// [3 3 2 4 5]
}

// ExampleWithParallelism evaluates a query on a worker pool. Results are
// identical to sequential execution — parallelism only changes how the
// executor schedules tuple-independent work.
func ExampleWithParallelism() {
	db := figure3()
	res, err := db.Query(`SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s)`,
		perm.WithParallelism(runtime.GOMAXPROCS(0)))
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row)
	}
	// Output:
	// [1 1 1 1 1 3]
	// [2 1 2 1 2 4]
}

// ExampleDB_Advise ranks the strategies with the provenance-aware cost
// model before running anything.
func ExampleDB_Advise() {
	db := perm.Open()
	_ = db.Register("r", []string{"a"}, [][]any{{1}, {2}})
	_ = db.Register("s", []string{"c"}, [][]any{{2}})

	advice, err := db.Advise(`SELECT a FROM r WHERE a = ANY (SELECT c FROM s)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cheapest:", advice[0].Strategy)
	fmt.Println("most expensive applicable:", advice[len(advice)-1].Strategy)
	// Output:
	// cheapest: Unn
	// most expensive applicable: Gen
}

// ExampleDB_Exec_views stores a query as a view and asks for provenance
// through it; the provenance traces to the base relations behind the view.
func ExampleDB_Exec_views() {
	db := perm.Open()
	_ = db.Register("r", []string{"a", "b"}, [][]any{{1, 1}, {2, 1}, {3, 2}})
	if _, err := db.Exec(`CREATE VIEW small AS SELECT a, b FROM r WHERE a <= 2`); err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(`SELECT PROVENANCE a FROM small ORDER BY a`)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range res.Provenance {
		fmt.Println("source:", g.Relation)
	}
	fmt.Println("rows:", len(res.Rows))
	// Output:
	// source: r
	// rows: 2
}
